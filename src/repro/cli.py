"""Command-line interface: ``decamouflage`` / ``python -m repro``.

Subcommands:

* ``scan DIR`` — scan a directory of PNG/PPM/PGM images for image-scaling
  attacks with the default ensemble (black-box calibrated on a synthetic
  hold-out by default, or on ``--holdout DIR`` of known-benign images).
* ``craft`` — craft an attack image from an original and a target (for
  red-team testing and demos).
* ``report`` — run the experiment suite and print every table/figure.
* ``exp`` — registry-driven orchestration: ``exp list`` prints every
  registered experiment; ``exp run T2 T8 --jobs 4 --cache-dir .cache``
  runs any subset through the :class:`~repro.eval.mediator
  .ExperimentMediator` with content-addressed caching and resume.
* ``loadlab`` — scenario-driven load lab: ``loadlab list`` prints the
  built-in scenarios; ``loadlab run ramp --out results/`` executes one
  end to end (self-launched server, resource telemetry, bootstrap CIs).
  See ``docs/loadlab.md``.

Exit status for ``scan``: 0 = clean, 1 = at least one attack flagged,
2 = usage/IO error. Every command exits 2 with a one-line ``error:``
message on a :class:`~repro.errors.ReproError` (unknown experiment id,
unwritable cache dir, bad input file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core.ensemble import build_default_ensemble
from repro.datasets.corpus import neurips_like_corpus
from repro.errors import ReproError
from repro.imaging.png import read_png, write_png
from repro.imaging.ppm import read_ppm, write_ppm

__all__ = ["main", "build_parser"]

_READERS = {".png": read_png, ".ppm": read_ppm, ".pgm": read_ppm}


def _read_image(path: Path) -> np.ndarray:
    reader = _READERS.get(path.suffix.lower())
    if reader is None:
        raise ReproError(f"{path}: unsupported extension (expected .png/.ppm/.pgm)")
    try:
        return reader(path)
    except OSError as exc:
        # Unreadable file (permissions, dangling symlink, directory named
        # like an image): a clean CLI error, not a traceback.
        raise ReproError(f"{path}: cannot read file ({exc})") from exc


def _write_image(path: Path, image: np.ndarray) -> None:
    if path.suffix.lower() == ".png":
        write_png(path, image)
    elif path.suffix.lower() in (".ppm", ".pgm"):
        write_ppm(path, image)
    else:
        raise ReproError(f"{path}: unsupported output extension")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="decamouflage",
        description="Detect image-scaling attacks on CNN preprocessing pipelines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="scan a directory (or one file) for attacks")
    scan.add_argument("directory", type=Path,
                      help="directory of .png/.ppm/.pgm images, or one image file")
    scan.add_argument("--input-size", type=int, nargs=2, default=(32, 32), metavar=("H", "W"),
                      help="the protected model's input size (default 32 32)")
    scan.add_argument("--algorithm", default="bilinear",
                      help="scaling algorithm the serving pipeline uses")
    scan.add_argument("--holdout", type=Path, default=None,
                      help="directory of known-benign images for black-box calibration "
                           "(default: synthetic hold-out corpus)")
    scan.add_argument("--percentile", type=float, default=1.0,
                      help="benign percentile sacrificed for the black-box threshold")
    scan.add_argument("--verbose", action="store_true", help="print per-method votes")
    scan.add_argument("--workers", type=int, default=1,
                      help="scan files on a thread pool (offline curation of large pools)")

    craft = sub.add_parser("craft", help="craft an attack image (red-team utility)")
    craft.add_argument("original", type=Path)
    craft.add_argument("target", type=Path)
    craft.add_argument("output", type=Path)
    craft.add_argument("--input-size", type=int, nargs=2, default=(32, 32), metavar=("H", "W"))
    craft.add_argument("--algorithm", default="bilinear")
    craft.add_argument("--epsilon", type=float, default=4.0)

    analyze = sub.add_parser(
        "analyze", help="rate a scaling configuration's attack surface"
    )
    analyze.add_argument("--source-size", type=int, nargs=2, required=True, metavar=("H", "W"),
                         help="incoming image size, e.g. 800 600")
    analyze.add_argument("--input-size", type=int, nargs=2, default=(224, 224), metavar=("H", "W"),
                         help="the model's input size (default 224 224)")
    analyze.add_argument("--algorithm", default="bilinear")
    analyze.add_argument("--map", type=Path, default=None,
                         help="write the vulnerability map as a PNG heat image")

    serve = sub.add_parser(
        "serve", help="run the HTTP detection service (see docs/serving.md)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="0 binds an ephemeral port (printed at startup)")
    serve.add_argument("--input-size", type=int, nargs=2, default=(32, 32), metavar=("H", "W"),
                       help="the protected model's input size (default 32 32)")
    serve.add_argument("--algorithm", default="bilinear",
                       help="scaling algorithm the serving pipeline uses")
    serve.add_argument("--holdout", type=Path, default=None,
                       help="directory of known-benign images for calibration "
                            "(default: synthetic hold-out corpus)")
    serve.add_argument("--percentile", type=float, default=1.0,
                       help="benign percentile sacrificed for the threshold")
    serve.add_argument("--policy", choices=["reject", "quarantine", "sanitize"],
                       default="reject", help="response policy for flagged inputs")
    serve.add_argument("--audit-log", type=Path, default=None,
                       help="JSONL decision log path (enables auditing)")
    serve.add_argument("--quarantine-dir", type=Path, default=None,
                       help="where the quarantine policy stores flagged images")
    serve.add_argument("--audit-max-bytes", type=int, default=None,
                       help="rotate the audit log before exceeding this size")
    serve.add_argument("--max-active", type=int, default=4,
                       help="requests scored concurrently")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="admission waiting room; beyond it requests get 429")
    serve.add_argument("--deadline-ms", type=float, default=2000.0,
                       help="max wait in the admission queue before 503")
    serve.add_argument("--workers", type=int, default=0,
                       help="scoring shard processes (0 = score in-process); "
                            "shards respawn automatically on crash")
    serve.add_argument("--frontend", choices=["eventloop", "threaded"],
                       default="eventloop",
                       help="connection front end: one selectors loop thread "
                            "(eventloop, default) or thread-per-connection")
    serve.add_argument("--transport", choices=["shm", "pipe"], default="shm",
                       help="dispatcher<->shard frame transport: shared-memory "
                            "slot rings (default) or pickled pipes")
    serve.add_argument("--ring-slots", type=int, default=8,
                       help="slots per shared-memory ring (shm transport)")
    serve.add_argument("--ring-slot-bytes", type=int, default=1 << 20,
                       help="payload capacity per ring slot; larger frames "
                            "fall back to the pipe")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per request")

    loadlab = sub.add_parser(
        "loadlab", help="scenario-driven load lab (see docs/loadlab.md)"
    )
    loadlab_sub = loadlab.add_subparsers(dest="loadlab_command", required=True)
    loadlab_sub.add_parser("list", help="print every built-in scenario")
    ll_run = loadlab_sub.add_parser(
        "run", help="execute one scenario end to end against a live server"
    )
    ll_run.add_argument("scenario",
                        help="built-in scenario name (see loadlab list) or a "
                             "path to a scenario JSON spec")
    ll_run.add_argument("--out", type=Path, default=None,
                        help="directory for the result JSON "
                             "(default: print the summary table only)")
    ll_run.add_argument("--duration-scale", type=float, default=1.0,
                        help="multiply every level duration (CI smoke uses < 1)")
    ll_run.add_argument("--seed", type=int, default=None,
                        help="override the scenario's seed")
    ll_run.add_argument("--host", default=None,
                        help="attach to an external server (launch=external only)")
    ll_run.add_argument("--port", type=int, default=None,
                        help="attach to an external server (launch=external only)")
    ll_run.add_argument("--json", action="store_true",
                        help="print the full result JSON instead of the table")

    report = sub.add_parser("report", help="run the paper-reproduction experiment suite")
    report.add_argument("--images", type=int, default=60,
                        help="corpus size per role (paper uses 1000; default 60)")
    report.add_argument("--only", nargs="*", default=None,
                        help="experiment ids to run (e.g. T2 T8)")

    figures = sub.add_parser("figures", help="render every paper figure as a PNG")
    figures.add_argument("output_dir", type=Path)
    figures.add_argument("--images", type=int, default=30,
                         help="corpus size used to compute the figures (default 30)")

    exp = sub.add_parser("exp", help="registry-driven experiment orchestration")
    exp_sub = exp.add_subparsers(dest="exp_command", required=True)
    exp_sub.add_parser("list", help="print every registered experiment")
    exp_run = exp_sub.add_parser(
        "run", help="run experiments through the mediator (cache, resume, fan-out)"
    )
    exp_run.add_argument("experiments", nargs="+", metavar="ID",
                         help="experiment ids or aliases (e.g. T2 T8 F9)")
    exp_run.add_argument("--images", type=int, default=None,
                         help="corpus size per role (sets both counts below)")
    exp_run.add_argument("--calibration", type=int, default=100,
                         help="calibration corpus size (default 100)")
    exp_run.add_argument("--evaluation", type=int, default=100,
                         help="evaluation corpus size (default 100)")
    exp_run.add_argument("--source-size", type=int, nargs=2, default=None,
                         metavar=("H", "W"), help="source image size")
    exp_run.add_argument("--input-size", type=int, nargs=2, default=None,
                         metavar=("H", "W"), help="model input size")
    exp_run.add_argument("--algorithm", default="bilinear",
                         help="scaling algorithm under attack")
    exp_run.add_argument("--epsilon", type=float, default=4.0,
                         help="attack crafting budget")
    exp_run.add_argument("--seed", type=int, default=0,
                         help="RNG seed threaded through corpora and runners")
    exp_run.add_argument("--jobs", type=int, default=1,
                         help="process fan-out across experiment cells")
    exp_run.add_argument("--cache-dir", type=Path, default=None,
                         help="content-addressed cache for attack sets and "
                              "calibration artifacts")
    exp_run.add_argument("--manifest", type=Path, default=None,
                         help="JSONL run manifest; rerunning with the same "
                              "manifest resumes where a killed run stopped")
    exp_run.add_argument("--out", type=Path, default=None,
                         help="directory for one result text file per experiment")
    exp_run.add_argument("--timings", action="store_true",
                         help="print per-stage wall times per experiment")
    return parser


def _load_holdout(args: argparse.Namespace) -> list[np.ndarray]:
    """The calibration hold-out for scan/serve: ``--holdout DIR`` or the
    synthetic corpus. Raises :class:`ReproError` on an unusable holdout."""
    if args.holdout is None:
        return neurips_like_corpus(50, name="cli-holdout").materialize()
    from repro.datasets.files import load_directory

    holdout = load_directory(args.holdout)
    if len(holdout) < 20:
        raise ReproError(
            f"holdout needs >= 20 benign images, found {len(holdout)}"
        )
    return holdout


def _cmd_scan(args: argparse.Namespace) -> int:
    if args.directory.is_dir():
        paths = sorted(
            p for p in args.directory.iterdir()
            if p.suffix.lower() in _READERS
        )
        if not paths:
            print(f"no scannable images in {args.directory}", file=sys.stderr)
            return 2
    else:
        # A single file: scan just it, and make decode failures fatal —
        # the user named this exact path, so a silent SKIP would lie.
        _read_image(args.directory)  # raises ReproError with the reason
        paths = [args.directory]

    ensemble = build_default_ensemble(tuple(args.input_size), algorithm=args.algorithm)
    ensemble.calibrate(_load_holdout(args), percentile=args.percentile)

    def scan_one(path):
        try:
            image = _read_image(path)
        except ReproError as exc:
            return path, None, exc
        return path, ensemble.detect(image), None

    if args.workers > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=args.workers) as pool:
            results = list(pool.map(scan_one, paths))
    else:
        results = [scan_one(path) for path in paths]

    flagged = 0
    scanned = 0
    for path, decision, error in results:
        if error is not None:
            print(f"SKIP  {path.name}: {error}", file=sys.stderr)
            continue
        scanned += 1
        verdict = "ATTACK" if decision.is_attack else "ok"
        print(f"{verdict:6s}  {path.name}  ({decision.votes_for_attack}/{decision.votes_total} votes)")
        if args.verbose:
            for det in decision.detections:
                print(f"        {det.method}/{det.metric}: {det.score:.4g} "
                      f"[{det.threshold.describe(det.metric)}]")
        flagged += int(decision.is_attack)
    print(f"scanned {scanned} image(s); flagged {flagged}")
    return 1 if flagged else 0


def _cmd_craft(args: argparse.Namespace) -> int:
    from repro.attacks.base import AttackConfig, verify_attack
    from repro.attacks.strong import craft_attack_image
    from repro.imaging.scaling import resize

    original = _read_image(args.original)
    target = _read_image(args.target)
    shape = tuple(args.input_size)
    if target.shape[:2] != shape:
        target = resize(target, shape, args.algorithm)
    result = craft_attack_image(
        original, target, algorithm=args.algorithm,
        config=AttackConfig(epsilon=args.epsilon),
    )
    report = verify_attack(result)
    _write_image(args.output, result.attack_image)
    print(f"wrote {args.output}")
    print(f"  target linf error : {report.target_linf:.2f} (ε={args.epsilon})")
    print(f"  perturbation MSE  : {report.perturbation_mse:.1f}")
    print(f"  perturbation SSIM : {report.perturbation_ssim:.3f}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.attacks.analysis import analyze_surface, vulnerability_map

    report = analyze_surface(
        tuple(args.source_size), tuple(args.input_size), args.algorithm
    )
    print(report.describe())
    if args.map is not None:
        heat = vulnerability_map(
            tuple(args.source_size), tuple(args.input_size), args.algorithm
        )
        peak = heat.max() or 1.0
        _write_image(args.map, (heat / peak * 255.0))
        print(f"vulnerability map written to {args.map}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving.audit import AuditLog
    from repro.serving.pipeline import ProtectedPipeline
    from repro.serving.policy import Policy
    from repro.serving.server import DetectionServer, ServerConfig

    audit_log = None
    if args.audit_log is not None or args.quarantine_dir is not None:
        if args.audit_log is None:
            raise ReproError("--quarantine-dir requires --audit-log")
        audit_log = AuditLog(
            args.audit_log,
            quarantine_dir=args.quarantine_dir,
            max_bytes=args.audit_max_bytes,
        )
    pipeline = ProtectedPipeline(
        tuple(args.input_size),
        algorithm=args.algorithm,
        policy=Policy(args.policy),
        audit_log=audit_log,
    )
    holdout = _load_holdout(args)
    print(f"calibrating on {len(holdout)} benign images ...", flush=True)
    pipeline.calibrate(holdout, percentile=args.percentile)

    server = DetectionServer(
        pipeline,
        ServerConfig(
            host=args.host,
            port=args.port,
            max_active=args.max_active,
            queue_depth=args.queue_depth,
            deadline_ms=args.deadline_ms,
            verbose=args.verbose,
            workers=args.workers,
            frontend=args.frontend,
            transport=args.transport,
            ring_slots=args.ring_slots,
            ring_slot_bytes=args.ring_slot_bytes,
        ),
    )
    server.install_signal_handlers()
    server.ensure_workers()
    host, port = server.address
    print(f"serving on http://{host}:{port} (SIGTERM/Ctrl-C drains gracefully)",
          flush=True)
    if server.worker_pool is not None:
        pids = server.worker_pool.pids()
        print("workers: "
              + " ".join(f"{wid}={pid}" for wid, pid in pids.items()),
              flush=True)
    try:
        server.serve_forever()
    finally:
        # Reached after a signal-triggered drain stopped the accept loop
        # (or on an unexpected error): make sure the drain fully finishes
        # — in-flight requests done, audit log flushed — before exiting.
        server.shutdown()
        print("drained; audit log flushed", flush=True)
    return 0


def _cmd_loadlab(args: argparse.Namespace) -> int:
    import json

    from repro.loadlab import (
        builtin_scenarios,
        get_scenario,
        load_scenario,
        render_table,
        run_scenario,
    )

    if args.loadlab_command == "list":
        for name, scenario in sorted(builtin_scenarios().items()):
            print(f"{name:18s} {scenario.fingerprint()}  {scenario.description}")
        return 0

    spec_path = Path(args.scenario)
    if spec_path.suffix == ".json" or spec_path.exists():
        scenario = load_scenario(spec_path)
    else:
        scenario = get_scenario(args.scenario)
    if args.seed is not None:
        scenario = scenario.with_seed(args.seed)
    result = run_scenario(
        scenario,
        host=args.host,
        port=args.port,
        out_dir=args.out,
        duration_scale=args.duration_scale,
    )
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(render_table(result), end="")
        if "written_to" in result:
            print(f"result written to {result['written_to']}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.report import render_report, run_all_experiments

    results = run_all_experiments(
        n_calibration=args.images, n_evaluation=args.images, only=args.only
    )
    print(render_report(results))
    return 0


def _cmd_exp(args: argparse.Namespace) -> int:
    from repro.eval.mediator import ExperimentMediator

    if args.exp_command == "list":
        for spec in ExperimentMediator.available():
            alias_note = f"  (aliases: {', '.join(spec.aliases)})" if spec.aliases else ""
            report_note = "" if spec.in_report else "  [not in report]"
            print(f"{spec.experiment_id:10s} {spec.kind:8s} {spec.title}"
                  f"{alias_note}{report_note}")
        return 0

    config_fields = {
        "n_calibration": args.images if args.images is not None else args.calibration,
        "n_evaluation": args.images if args.images is not None else args.evaluation,
        "algorithm": args.algorithm,
        "epsilon": args.epsilon,
        "seed": args.seed,
    }
    if args.source_size is not None:
        config_fields["source_shape"] = tuple(args.source_size)
    if args.input_size is not None:
        config_fields["model_input_shape"] = tuple(args.input_size)
    mediator = ExperimentMediator.setup(
        cache_dir=args.cache_dir,
        manifest=args.manifest,
        jobs=args.jobs,
        **config_fields,
    )
    results = mediator.run(args.experiments)
    if args.out is not None:
        try:
            args.out.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ReproError(f"output dir {args.out} is not writable ({exc})") from exc
    for result in results:
        print(result.to_text())
        print()
        if args.timings and result.timings:
            ordered = ", ".join(
                f"{name}={seconds:.3f}s" for name, seconds in sorted(result.timings.items())
            )
            print(f"timings [{result.experiment_id}]: {ordered}")
            print()
        if args.out is not None:
            name = result.experiment_id.replace("/", "_")
            (args.out / f"{name}.txt").write_text(result.to_text() + "\n",
                                                  encoding="utf-8")
    stats = mediator.cache_stats()
    if stats is not None:
        print(f"cache: {stats['hits']} hits, {stats['misses']} misses "
              f"({stats['hit_rate']:.1%} hit rate)")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.eval.data import prepare_data
    from repro.eval.figures import render_all_figures

    data = prepare_data(args.images, args.images)
    paths = render_all_figures(data, args.output_dir)
    for path in paths:
        print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "scan":
            return _cmd_scan(args)
        if args.command == "craft":
            return _cmd_craft(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "loadlab":
            return _cmd_loadlab(args)
        if args.command == "figures":
            return _cmd_figures(args)
        if args.command == "exp":
            return _cmd_exp(args)
        return _cmd_report(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
