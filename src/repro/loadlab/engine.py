"""The load engine: drive a compiled schedule against a live server.

Closed-loop levels spawn one thread per scheduled client, each holding
its own keep-alive :class:`~repro.serving.client.DetectionClient` and
firing back-to-back until the level's clock runs out. Open-loop levels
replay the pre-compiled Poisson arrival instants from a scheduler thread
into a bounded dispatch pool, so offered load is independent of service
time — the property closed loops cannot give you.

Adversarial kinds leave the HTTP client: ``slow_loris`` opens a raw
socket and dribbles a request header a few bytes at a time without ever
completing it (the server's per-connection socket timeout is what should
save it), and ``garbage`` posts undecodable bodies that must come back
``400``, not ``500``.

Every request becomes one :class:`RequestRecord`; the results pipeline
(:mod:`repro.loadlab.results`) does all aggregation. The engine itself
never retries, sleeps, or reads wall-clock time except through its
injectable ``clock``, which is how the tests drive it with
``tests.fault_injection.FakeTime`` against a ``ScriptedServer``.
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import ServingError
from repro.loadlab.schedule import LevelSchedule, kind_stream
from repro.loadlab.scenario import Scenario
from repro.loadlab.workload import PayloadPool
from repro.serving.client import DetectionClient
from repro.serving.wire import BATCH_CONTENT_TYPE, IMAGE_CONTENT_TYPE

__all__ = ["EXPECTED_STATUSES", "LoadEngine", "RequestRecord"]

#: What "the server behaved" means per request kind: benign, attack, and
#: batch uploads must score (200); garbage must be *rejected cleanly*
#: (400); a slow-loris hold never completes, so any outcome but a crash
#: counts (status 0 records the abort).
EXPECTED_STATUSES = {
    "benign": frozenset({200}),
    "attack": frozenset({200}),
    "batch": frozenset({200}),
    "garbage": frozenset({400}),
    "slow_loris": frozenset({0}),
}

#: Bytes of request head a slow-loris connection dribbles out.
_LORIS_HEAD = (
    b"POST /v1/detect HTTP/1.1\r\n"
    b"Content-Type: application/octet-stream\r\n"
    b"Content-Length: 1000000\r\n"
)
_LORIS_CHUNKS = 8


@dataclass(frozen=True)
class RequestRecord:
    """One fired request, as observed by the generator."""

    level: int
    kind: str
    #: HTTP status; 0 = no complete response (transport error or an
    #: intentionally-abandoned slow-loris hold).
    status: int
    #: Whether the outcome matches :data:`EXPECTED_STATUSES` for the kind.
    ok: bool
    latency_ms: float
    #: Offset of the request's start from the engine run's start.
    start_s: float


class LoadEngine:
    """Execute one compiled schedule; returns the flat record list.

    Thread-safety: ``_lock`` guards the record list and the per-level
    request budget; clients are per-thread and sockets are touched only
    outside the lock.
    """

    def __init__(
        self,
        scenario: Scenario,
        schedule: tuple[LevelSchedule, ...],
        payloads: PayloadPool,
        host: str,
        port: int,
        *,
        clock=None,
    ) -> None:
        self.scenario = scenario
        self.schedule = schedule
        self.payloads = payloads
        self.host = host
        self.port = port
        self._clock = clock or time
        self._lock = threading.Lock()
        self._records: list[RequestRecord] = []
        self._level_count = 0
        self._t0 = 0.0

    # -- public ---------------------------------------------------------------

    def run(self) -> list[RequestRecord]:
        """Drive every level in order; blocking. Returns all records."""
        self._warmup()
        self._t0 = self._clock.monotonic()
        for level in self.schedule:
            with self._lock:
                self._level_count = 0
            if level.mode == "closed":
                self._run_closed(level)
            else:
                self._run_open(level)
        with self._lock:
            return list(self._records)

    def _warmup(self) -> None:
        """Fire the scenario's unrecorded warm-up requests sequentially, so
        cold caches (shard plan compilation, operator memos) don't land in
        level 0's latency sample. Uses the first scorable pool."""
        count = self.scenario.warmup_requests
        if count <= 0:
            return
        kind = next(
            (k for k in ("benign", "batch", "attack") if getattr(self.payloads, k)),
            None,
        )
        if kind is None:
            return
        client = self._make_client()
        try:
            for index in range(count):
                self._post(client, kind, index)
        finally:
            client.close()

    # -- record plumbing ------------------------------------------------------

    def _record(self, record: RequestRecord) -> None:
        with self._lock:
            self._records.append(record)

    def _claim_budget(self) -> bool:
        """Reserve one request against the per-level cap; False = stop."""
        cap = self.scenario.max_requests_per_level
        with self._lock:
            if cap is not None and self._level_count >= cap:
                return False
            self._level_count += 1
            return True

    # -- closed loop ----------------------------------------------------------

    def _run_closed(self, level: LevelSchedule) -> None:
        end = self._clock.monotonic() + level.duration_s
        think = self.scenario.arrival.think_time_s

        def client_loop(client_index: int) -> None:
            stream = kind_stream(self.scenario, level.index, client_index)
            client = self._make_client()
            sent = 0
            try:
                while self._clock.monotonic() < end:
                    if not self._claim_budget():
                        return
                    kind = stream.next()
                    self._record(self._fire(client, level.index, kind, sent))
                    sent += 1
                    if think > 0:
                        self._clock.sleep(think)
            finally:
                client.close()

        threads = [
            threading.Thread(
                target=client_loop, args=(index,), name=f"loadlab-client-{index}"
            )
            for index in range(level.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=level.duration_s + self.scenario.client_timeout_s + 30.0)

    # -- open loop ------------------------------------------------------------

    def _run_open(self, level: LevelSchedule) -> None:
        local = threading.local()
        clients: list[DetectionClient] = []

        def task(kind: str, sequence: int) -> None:
            client = getattr(local, "client", None)
            if client is None:
                client = local.client = self._make_client()
                with self._lock:
                    clients.append(client)
            self._record(self._fire(client, level.index, kind, sequence))

        start = self._clock.monotonic()
        try:
            with ThreadPoolExecutor(
                max_workers=self.scenario.arrival.max_outstanding,
                thread_name_prefix="loadlab-open",
            ) as pool:
                for sequence, arrival in enumerate(level.arrivals):
                    delay = start + arrival.at_s - self._clock.monotonic()
                    if delay > 0:
                        self._clock.sleep(delay)
                    pool.submit(task, arrival.kind, sequence)
        finally:
            for client in clients:
                client.close()

    # -- one request ----------------------------------------------------------

    def _make_client(self) -> DetectionClient:
        return DetectionClient(
            self.host,
            self.port,
            timeout_s=self.scenario.client_timeout_s,
            max_retries=self.scenario.client_retries,
        )

    def _fire(
        self, client: DetectionClient, level_index: int, kind: str, sequence: int
    ) -> RequestRecord:
        start_s = self._clock.monotonic() - self._t0
        started = self._clock.perf_counter()
        if kind == "slow_loris":
            self._slow_loris_hold()
            status = 0
        else:
            status = self._post(client, kind, sequence)
        latency_ms = (self._clock.perf_counter() - started) * 1000.0
        return RequestRecord(
            level=level_index,
            kind=kind,
            status=status,
            ok=status in EXPECTED_STATUSES[kind],
            latency_ms=latency_ms,
            start_s=start_s,
        )

    def _post(self, client: DetectionClient, kind: str, sequence: int) -> int:
        if kind == "batch":
            path, content_type = "/v1/detect/batch", BATCH_CONTENT_TYPE
        else:
            path, content_type = "/v1/detect", IMAGE_CONTENT_TYPE
        body = self.payloads.payload_for(kind, sequence)
        try:
            status, _, _ = client.request_raw(
                "POST", path, body=body, headers={"Content-Type": content_type}
            )
        except ServingError:
            return 0
        return status

    def _slow_loris_hold(self) -> None:
        """Open a connection and dribble an incomplete request head, then
        abandon it — the attack is the *hold*, not the response."""
        hold_s = self.scenario.mix.slow_loris_hold_s
        pause = hold_s / _LORIS_CHUNKS
        step = max(1, len(_LORIS_HEAD) // _LORIS_CHUNKS)
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.scenario.client_timeout_s
            ) as conn:
                for offset in range(0, len(_LORIS_HEAD), step):
                    conn.sendall(_LORIS_HEAD[offset : offset + step])
                    self._clock.sleep(pause)
        except OSError:
            # The server cut the hold short (socket timeout, drain) —
            # which is the defense working; the record stays status 0.
            return
