"""Per-process resource telemetry: CPU, RSS, and fd counts over time.

One :class:`ResourceSampler` watches a set of named processes — the
dispatcher and every worker shard — by polling
``/proc/<pid>/{stat,status,fd}`` through
:func:`repro.observability.read_process_stats` on a background thread.
Each poll appends one :class:`ResourceSample` per still-alive process; a
process that exits mid-run simply stops accumulating samples (its series
up to death is kept — that *is* the telemetry when a shard crashes).

``proc_root``, ``ticks_per_s``, and ``clock`` are injectable so the
parsing is testable against synthetic ``/proc`` fixtures with no real
processes and no real time.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import LoadLabError
from repro.observability import read_process_stats

__all__ = ["ResourceSample", "ResourceSampler"]


@dataclass(frozen=True)
class ResourceSample:
    """One poll of one process."""

    #: Seconds since the sampler started.
    t_s: float
    cpu_seconds: float
    rss_bytes: float
    #: ``-1`` when the fd table was unreadable (foreign uid).
    open_fds: float

    def as_dict(self) -> dict[str, float]:
        return {
            "t_s": round(self.t_s, 4),
            "cpu_seconds": round(self.cpu_seconds, 4),
            "rss_bytes": self.rss_bytes,
            "open_fds": self.open_fds,
        }


class ResourceSampler:
    """Poll a named set of pids until stopped.

    ``pids`` maps a role name (``"dispatcher"``, ``"worker-0"``, ...) to
    an OS pid. Thread-safety: ``_lock`` guards the series dict and the
    stop flag; ``/proc`` reads happen outside it.
    """

    def __init__(
        self,
        pids: Mapping[str, int],
        *,
        period_s: float = 0.2,
        proc_root: str = "/proc",
        ticks_per_s: float | None = None,
        clock=None,
    ) -> None:
        if not pids:
            raise LoadLabError("sampler needs at least one pid to watch")
        if period_s <= 0:
            raise LoadLabError(f"period_s must be > 0, got {period_s}")
        self.pids = dict(pids)
        self.period_s = period_s
        self.proc_root = proc_root
        self.ticks_per_s = ticks_per_s
        self._clock = clock or time
        self._lock = threading.Lock()
        self._series: dict[str, list[ResourceSample]] = {
            role: [] for role in self.pids
        }
        self._gone: set[str] = set()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._t0 = 0.0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            raise LoadLabError("sampler is already started")
        self._t0 = self._clock.monotonic()
        self.sample_once()  # a t=0 baseline for every process
        self._thread = threading.Thread(
            target=self._loop, name="loadlab-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> dict[str, list[ResourceSample]]:
        """Stop polling and return the full series per role."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.period_s * 10 + 5.0)
            self._thread = None
        self.sample_once()  # a final post-load point
        return self.series()

    def series(self) -> dict[str, list[ResourceSample]]:
        with self._lock:
            return {role: list(samples) for role, samples in self._series.items()}

    # -- polling --------------------------------------------------------------

    def sample_once(self) -> None:
        """Poll every watched process once (also usable standalone)."""
        now = self._clock.monotonic() - self._t0
        fresh: dict[str, ResourceSample] = {}
        for role, pid in self.pids.items():
            with self._lock:
                if role in self._gone:
                    continue
            stats = read_process_stats(
                pid, proc_root=self.proc_root, ticks_per_s=self.ticks_per_s
            )
            if stats is None:
                with self._lock:
                    self._gone.add(role)
                continue
            fresh[role] = ResourceSample(
                t_s=now,
                cpu_seconds=stats["cpu_seconds"],
                rss_bytes=stats["rss_bytes"],
                open_fds=stats["open_fds"],
            )
        with self._lock:
            for role, sample in fresh.items():
                self._series[role].append(sample)

    def _loop(self) -> None:
        # Event.wait (not clock.sleep) so stop() interrupts a pending
        # period immediately; the injectable clock only stamps t_s.
        while not self._stop.wait(self.period_s):
            self.sample_once()
