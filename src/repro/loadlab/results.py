"""The statistical results pipeline: records + scrapes → versioned JSON.

Takes everything a run produced — the engine's per-request records, the
``/metrics`` scrape before and after, and the resource sampler's
per-process series — and emits one schema-versioned payload
(:data:`RESULTS_SCHEMA_VERSION`) with honest uncertainty:

* per-level **throughput** with a bootstrap confidence interval over
  per-slot completion counts (the level is cut into equal time slots and
  the slot counts are resampled);
* per-level **latency quantiles** (p50/p95/p99) with bootstrap CIs over
  the completed-request latency sample;
* **metrics deltas**: counter families (``*_total``, histogram
  ``_sum``/``_count``/``_bucket``) as after-minus-before, gauges as
  their after values;
* **resource series** per process role, passed through as sampled.

Bootstrap draws come from a seeded generator, so the CIs themselves are
reproducible. :func:`validate_result` is the schema gate the tests and
the CI smoke job assert through; :func:`render_table` renders the
per-level summary as the human table the old ``bench_serving_*`` scripts
used to print.
"""

from __future__ import annotations

import re

import numpy as np

from repro.errors import LoadLabError
from repro.loadlab.engine import RequestRecord
from repro.loadlab.sampler import ResourceSample
from repro.loadlab.scenario import Scenario
from repro.loadlab.schedule import LevelSchedule

__all__ = [
    "RESULTS_SCHEMA_VERSION",
    "bootstrap_ci",
    "build_result",
    "metrics_delta",
    "parse_prometheus",
    "render_table",
    "summarize_level",
    "validate_result",
]

RESULTS_SCHEMA_VERSION = 1

#: Quantiles reported per level.
_QUANTILES = (("p50_ms", 50.0), ("p95_ms", 95.0), ("p99_ms", 99.0))
#: Time slots a level is cut into for the throughput bootstrap.
_THROUGHPUT_SLOTS = 10
#: Seed-stream namespace for bootstrap draws.
_BOOTSTRAP_STREAM = 60013

_SAMPLE_LINE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?)\s+(\S+)$")


# -- Prometheus scrape parsing ------------------------------------------------


def parse_prometheus(text: str) -> dict[str, float]:
    """Flatten a text exposition into ``name{labels} -> value``."""
    values: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            continue
        try:
            values[match.group(1)] = float(match.group(2))
        except ValueError:
            continue
    return values


def _is_counter_sample(name: str) -> bool:
    bare = name.split("{", 1)[0]
    return bare.endswith(("_total", "_sum", "_count")) or bare.endswith("_bucket")


def metrics_delta(before: dict[str, float], after: dict[str, float]) -> dict[str, float]:
    """Counter samples as after−before, gauge samples as their after value.

    Counters absent from *before* (created mid-run) delta against 0. A
    negative counter delta means the server restarted mid-run — kept
    as-is, because hiding it would lie about the run.
    """
    delta: dict[str, float] = {}
    for name, value in after.items():
        if _is_counter_sample(name):
            delta[name] = value - before.get(name, 0.0)
        else:
            delta[name] = value
    return delta


# -- bootstrap ----------------------------------------------------------------


def bootstrap_ci(
    values,
    statistic,
    *,
    resamples: int,
    rng: np.random.Generator,
    alpha: float = 0.05,
) -> tuple[float, float]:
    """Percentile-bootstrap ``(lo, hi)`` for *statistic* over *values*."""
    sample = np.asarray(values, dtype=np.float64)
    if sample.size == 0:
        return (0.0, 0.0)
    if sample.size == 1:
        point = float(statistic(sample))
        return (point, point)
    stats = np.empty(resamples, dtype=np.float64)
    for index in range(resamples):
        stats[index] = statistic(rng.choice(sample, size=sample.size, replace=True))
    lo, hi = np.percentile(stats, [100.0 * alpha / 2.0, 100.0 * (1.0 - alpha / 2.0)])
    return (float(lo), float(hi))


def _point_with_ci(point: float, ci: tuple[float, float]) -> dict:
    return {"value": float(point), "ci95": [float(ci[0]), float(ci[1])]}


# -- per-level summaries ------------------------------------------------------


def summarize_level(
    level: LevelSchedule,
    records: list[RequestRecord],
    *,
    resamples: int,
    seed: int,
) -> dict:
    """One level's results row: counts, throughput+CI, latency quantiles+CI."""
    rng = np.random.default_rng((seed, _BOOTSTRAP_STREAM, level.index))
    completed = [r for r in records if r.status != 0]
    scored = [r for r in completed if r.status == 200]
    duration = level.duration_s
    latencies = np.array([r.latency_ms for r in scored], dtype=np.float64)

    # Throughput CI: completions per equal time slot, slot means resampled.
    slot_s = duration / _THROUGHPUT_SLOTS
    slot_counts = np.zeros(_THROUGHPUT_SLOTS, dtype=np.float64)
    level_start = min((r.start_s for r in records), default=0.0)
    for record in scored:
        slot = int((record.start_s - level_start) / slot_s) if slot_s > 0 else 0
        slot_counts[min(max(slot, 0), _THROUGHPUT_SLOTS - 1)] += 1
    throughput = len(scored) / duration if duration > 0 else 0.0
    throughput_ci = bootstrap_ci(
        slot_counts,
        lambda counts: float(np.mean(counts)) / slot_s if slot_s > 0 else 0.0,
        resamples=resamples,
        rng=rng,
    )

    latency: dict[str, dict] = {}
    for name, q in _QUANTILES:
        if latencies.size == 0:
            latency[name] = _point_with_ci(0.0, (0.0, 0.0))
            continue
        point = float(np.percentile(latencies, q))
        ci = bootstrap_ci(
            latencies,
            lambda arr, q=q: float(np.percentile(arr, q)),
            resamples=resamples,
            rng=rng,
        )
        latency[name] = _point_with_ci(point, ci)

    by_kind: dict[str, dict] = {}
    for record in records:
        row = by_kind.setdefault(
            record.kind, {"sent": 0, "ok": 0, "statuses": {}}
        )
        row["sent"] += 1
        row["ok"] += int(record.ok)
        key = str(record.status)
        row["statuses"][key] = row["statuses"].get(key, 0) + 1

    return {
        "level": level.index,
        "mode": level.mode,
        "intensity": level.intensity,
        "clients": level.clients,
        "duration_s": duration,
        "offered": len(level.arrivals) if level.mode == "open" else len(records),
        "sent": len(records),
        "completed": len(completed),
        "scored": len(scored),
        "misbehaved": sum(1 for r in records if not r.ok),
        "throughput_rps": _point_with_ci(throughput, throughput_ci),
        "latency_ms": latency,
        "by_kind": by_kind,
    }


# -- assembly -----------------------------------------------------------------


def _resources_payload(
    resources: dict[str, list[ResourceSample]], pids: dict[str, int]
) -> dict:
    return {
        role: {
            "pid": pids.get(role, -1),
            "samples": [sample.as_dict() for sample in samples],
        }
        for role, samples in sorted(resources.items())
    }


def build_result(
    scenario: Scenario,
    schedule: tuple[LevelSchedule, ...],
    records: list[RequestRecord],
    *,
    digest: str,
    resources: dict[str, list[ResourceSample]],
    pids: dict[str, int],
    metrics_before: str,
    metrics_after: str,
    host: dict,
    wall_s: float,
    duration_scale: float = 1.0,
) -> dict:
    """Assemble the full schema-v1 results payload."""
    by_level: dict[int, list[RequestRecord]] = {}
    for record in records:
        by_level.setdefault(record.level, []).append(record)
    before = parse_prometheus(metrics_before)
    after = parse_prometheus(metrics_after)
    return {
        "schema_version": RESULTS_SCHEMA_VERSION,
        "scenario": scenario.as_dict(),
        "fingerprint": scenario.fingerprint(),
        "schedule_digest": digest,
        "duration_scale": duration_scale,
        "wall_s": wall_s,
        "host": host,
        "levels": [
            summarize_level(
                level,
                by_level.get(level.index, []),
                resamples=scenario.bootstrap_resamples,
                seed=scenario.seed,
            )
            for level in schedule
        ],
        "metrics_delta": metrics_delta(before, after),
        "metrics_after": after,
        "resources": _resources_payload(resources, pids),
    }


# -- schema gate --------------------------------------------------------------

_LEVEL_KEYS = (
    "level",
    "mode",
    "intensity",
    "duration_s",
    "sent",
    "completed",
    "scored",
    "throughput_rps",
    "latency_ms",
    "by_kind",
)
_TOP_KEYS = (
    "schema_version",
    "scenario",
    "fingerprint",
    "schedule_digest",
    "host",
    "levels",
    "metrics_delta",
    "resources",
)


def validate_result(payload: dict) -> None:
    """Raise :class:`LoadLabError` unless *payload* is a valid v1 result."""
    if not isinstance(payload, dict):
        raise LoadLabError(f"result must be a dict, got {type(payload).__name__}")
    for key in _TOP_KEYS:
        if key not in payload:
            raise LoadLabError(f"result is missing {key!r}")
    if payload["schema_version"] != RESULTS_SCHEMA_VERSION:
        raise LoadLabError(
            f"unsupported schema_version {payload['schema_version']!r} "
            f"(this build reads {RESULTS_SCHEMA_VERSION})"
        )
    if not payload["levels"]:
        raise LoadLabError("result has no levels")
    for row in payload["levels"]:
        for key in _LEVEL_KEYS:
            if key not in row:
                raise LoadLabError(f"level row is missing {key!r}")
        for name in ("p50_ms", "p95_ms", "p99_ms"):
            cell = row["latency_ms"].get(name)
            if not isinstance(cell, dict) or "value" not in cell or "ci95" not in cell:
                raise LoadLabError(f"level {row['level']} lacks {name} value/ci95")
        cell = row["throughput_rps"]
        if not isinstance(cell, dict) or "value" not in cell or "ci95" not in cell:
            raise LoadLabError(f"level {row['level']} lacks throughput value/ci95")
    for role, entry in payload["resources"].items():
        if "pid" not in entry or "samples" not in entry:
            raise LoadLabError(f"resource series {role!r} lacks pid/samples")
        for sample in entry["samples"]:
            for key in ("t_s", "cpu_seconds", "rss_bytes", "open_fds"):
                if key not in sample:
                    raise LoadLabError(f"resource sample for {role!r} lacks {key!r}")


# -- human rendering ----------------------------------------------------------


def render_table(result: dict) -> str:
    """The per-level summary as a fixed-width table plus a resource line."""
    scenario = result["scenario"]
    lines = [
        f"loadlab scenario {scenario['name']!r} "
        f"(fingerprint {result['fingerprint']}, "
        f"schedule {result['schedule_digest']}, seed {scenario['seed']})",
        f"{'lvl':>3} {'mode':>6} {'intensity':>9} {'sent':>6} {'ok':>6} "
        f"{'throughput':>16} {'p50':>9} {'p95':>9} {'p99':>9}",
    ]
    for row in result["levels"]:
        tp = row["throughput_rps"]
        lat = row["latency_ms"]
        lines.append(
            f"{row['level']:>3d} {row['mode']:>6} {row['intensity']:>9.1f} "
            f"{row['sent']:>6d} {row['sent'] - row['misbehaved']:>6d} "
            f"{tp['value']:>7.1f} req/s "
            f"[{tp['ci95'][0]:.1f},{tp['ci95'][1]:.1f}] "
            f"{lat['p50_ms']['value']:>6.1f} ms {lat['p95_ms']['value']:>6.1f} ms "
            f"{lat['p99_ms']['value']:>6.1f} ms"
        )
    for role, entry in result["resources"].items():
        samples = entry["samples"]
        if not samples:
            lines.append(f"  {role}: pid {entry['pid']}, no samples")
            continue
        cpu = samples[-1]["cpu_seconds"] - samples[0]["cpu_seconds"]
        peak_rss = max(sample["rss_bytes"] for sample in samples) / (1024.0 * 1024.0)
        peak_fds = max(sample["open_fds"] for sample in samples)
        lines.append(
            f"  {role}: pid {entry['pid']}, cpu {cpu:.2f}s, "
            f"peak rss {peak_rss:.1f} MiB, peak fds {peak_fds:.0f} "
            f"({len(samples)} samples)"
        )
    return "\n".join(lines) + "\n"
