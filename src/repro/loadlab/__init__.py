"""Scenario-driven load lab for the detection service.

One-off ``bench_serving_*.py`` scripts answer "how fast was it that one
time"; this package answers "how does the service behave under a *named,
frozen, reproducible* traffic shape" — including the adversarial shapes
(garbage frames, slow-loris connections, attack-image floods) a deployed
scaling-attack screen actually faces. Four moving parts:

* **Scenarios** (:mod:`repro.loadlab.scenario`) — frozen dataclass specs
  composing a load profile (constant/ramp/geometric/spike/diurnal) × an arrival
  model (closed-loop clients or open-loop Poisson) × a workload mix
  (benign, attack, garbage, slow-loris, batch), JSON-serializable with a
  content fingerprint like :class:`repro.eval.data.DataConfig`.
* **Schedules** (:mod:`repro.loadlab.schedule`) — the deterministic,
  seed-reproducible offered-load plan compiled from a scenario.
* **The engine** (:mod:`repro.loadlab.engine`) — drives a
  :class:`~repro.serving.client.DetectionClient` (and raw sockets for the
  adversarial steps) through the schedule while a **resource sampler**
  (:mod:`repro.loadlab.sampler`) reads ``/proc/<pid>/{stat,status,fd}``
  for the dispatcher and every worker shard.
* **The results pipeline** (:mod:`repro.loadlab.results`) — merges
  client-side records, ``/metrics`` scrape deltas, and resource series
  into schema-versioned per-run JSON with bootstrap confidence intervals.

``repro loadlab run <scenario>`` (or :func:`repro.loadlab.runner
.run_scenario`) executes the whole thing end to end against a
self-launched server. See ``docs/loadlab.md``.
"""

from repro.loadlab.engine import LoadEngine, RequestRecord
from repro.loadlab.results import (
    RESULTS_SCHEMA_VERSION,
    build_result,
    render_table,
    validate_result,
)
from repro.loadlab.runner import run_scenario
from repro.loadlab.sampler import ResourceSample, ResourceSampler
from repro.loadlab.scenario import (
    ArrivalModel,
    LoadProfile,
    Scenario,
    ServerSpec,
    WorkloadMix,
    load_scenario,
)
from repro.loadlab.scenarios import builtin_scenarios, get_scenario
from repro.loadlab.schedule import LevelSchedule, compile_schedule, schedule_digest

__all__ = [
    "ArrivalModel",
    "LevelSchedule",
    "LoadEngine",
    "LoadProfile",
    "RequestRecord",
    "RESULTS_SCHEMA_VERSION",
    "ResourceSample",
    "ResourceSampler",
    "Scenario",
    "ServerSpec",
    "WorkloadMix",
    "build_result",
    "builtin_scenarios",
    "compile_schedule",
    "get_scenario",
    "load_scenario",
    "render_table",
    "run_scenario",
    "schedule_digest",
    "validate_result",
]
