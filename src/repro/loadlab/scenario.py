"""Declarative load-lab scenarios: frozen specs with a content fingerprint.

A :class:`Scenario` composes four orthogonal choices:

* :class:`LoadProfile` — how the offered intensity evolves over the run
  (``constant``, ``ramp``, ``spike``, ``diurnal``), expanded into a
  sequence of fixed-duration levels;
* :class:`ArrivalModel` — what "intensity" means: ``closed`` (that many
  concurrent back-to-back clients) or ``poisson`` (an open-loop arrival
  process at that mean rate in requests/second);
* :class:`WorkloadMix` — what each request is: benign single images,
  crafted attack images, undecodable garbage frames, slow-loris
  connection holds, or batch endpoint calls;
* :class:`ServerSpec` — the server under test (worker shards, admission
  knobs) and how to launch it (``subprocess``/``inprocess``/``external``).

Everything is a frozen dataclass, serializable to/from JSON
(:meth:`Scenario.to_json` / :func:`load_scenario`), and
:meth:`Scenario.fingerprint` is a stable content address in the spirit of
:class:`repro.eval.data.DataConfig`: two scenarios with equal
fingerprints compile to the same offered-load schedule under the same
seed. The cosmetic ``description`` is excluded from the fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections.abc import Mapping
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.errors import LoadLabError

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalModel",
    "FRONTEND_KINDS",
    "LAUNCH_KINDS",
    "TRANSPORT_KINDS",
    "LoadLevel",
    "LoadProfile",
    "PROFILE_KINDS",
    "REQUEST_KINDS",
    "Scenario",
    "ServerSpec",
    "WorkloadMix",
    "load_scenario",
]

PROFILE_KINDS = ("constant", "ramp", "geometric", "spike", "diurnal")
ARRIVAL_KINDS = ("closed", "poisson")
LAUNCH_KINDS = ("subprocess", "inprocess", "external")
#: Connection front ends a ServerSpec may request (mirrors
#: :class:`repro.serving.server.ServerConfig`).
FRONTEND_KINDS = ("eventloop", "threaded")
#: Dispatcher ↔ shard frame transports.
TRANSPORT_KINDS = ("shm", "pipe")
#: Request kinds a mix can weight. ``benign``/``attack``/``batch`` expect
#: HTTP 200, ``garbage`` expects a 400 rejection, ``slow_loris`` holds a
#: connection open without completing a request.
REQUEST_KINDS = ("benign", "attack", "garbage", "slow_loris", "batch")


@dataclass(frozen=True)
class LoadLevel:
    """One expanded step of a profile: intensity held for a duration."""

    intensity: float
    duration_s: float


@dataclass(frozen=True)
class LoadProfile:
    """How offered intensity evolves: a named shape expanded into levels.

    ``base`` and ``peak`` are intensities in the arrival model's unit
    (clients for closed-loop, requests/second for open-loop). Shapes:

    * ``constant`` — ``steps`` identical levels at ``base``;
    * ``ramp`` — ``steps`` levels linearly from ``base`` to ``peak``;
    * ``geometric`` — ``steps`` levels on a geometric grid from ``base``
      to ``peak`` (64 → 512 over four steps doubles each level: the
      shape concurrency sweeps want);
    * ``spike`` — ``base`` everywhere except the middle level at ``peak``;
    * ``diurnal`` — a raised-cosine day/night wave between ``base`` and
      ``peak``, ``periods`` full cycles across ``steps`` levels.
    """

    kind: str = "constant"
    base: float = 4.0
    peak: float | None = None
    steps: int = 4
    periods: int = 1
    level_duration_s: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in PROFILE_KINDS:
            raise LoadLabError(
                f"unknown profile kind {self.kind!r} (expected one of {PROFILE_KINDS})"
            )
        if self.base <= 0:
            raise LoadLabError(f"profile base must be > 0, got {self.base}")
        if self.steps < 1:
            raise LoadLabError(f"profile steps must be >= 1, got {self.steps}")
        if self.level_duration_s <= 0:
            raise LoadLabError(
                f"level_duration_s must be > 0, got {self.level_duration_s}"
            )
        if self.kind != "constant" and self.peak is None:
            raise LoadLabError(f"profile kind {self.kind!r} requires a peak")
        if self.kind == "geometric" and self.peak is not None and self.peak <= 0:
            raise LoadLabError(f"geometric peak must be > 0, got {self.peak}")
        if self.kind == "spike" and self.steps < 3:
            raise LoadLabError("spike profiles need steps >= 3 (base, peak, base)")
        if self.kind == "diurnal" and self.periods < 1:
            raise LoadLabError(f"diurnal periods must be >= 1, got {self.periods}")

    def levels(self) -> tuple[LoadLevel, ...]:
        """The profile expanded into fixed-duration intensity levels."""
        if self.kind == "constant":
            intensities = [self.base] * self.steps
        elif self.kind == "ramp":
            if self.steps == 1:
                intensities = [float(self.peak)]
            else:
                span = (self.peak - self.base) / (self.steps - 1)
                intensities = [self.base + span * i for i in range(self.steps)]
        elif self.kind == "geometric":
            if self.steps == 1:
                intensities = [float(self.peak)]
            else:
                ratio = (self.peak / self.base) ** (1.0 / (self.steps - 1))
                intensities = [self.base * ratio**i for i in range(self.steps)]
        elif self.kind == "spike":
            intensities = [self.base] * self.steps
            intensities[self.steps // 2] = float(self.peak)
        else:  # diurnal
            swing = self.peak - self.base
            intensities = [
                self.base
                + swing * (1.0 - math.cos(2.0 * math.pi * self.periods * i / self.steps)) / 2.0
                for i in range(self.steps)
            ]
        return tuple(
            LoadLevel(float(value), self.level_duration_s) for value in intensities
        )


@dataclass(frozen=True)
class ArrivalModel:
    """What a level's intensity means and how requests enter the system."""

    kind: str = "closed"
    #: Closed-loop: per-client pause between a response and the next
    #: request (0 = back-to-back, the classic closed loop).
    think_time_s: float = 0.0
    #: Open-loop: dispatch thread cap — arrivals beyond it still fire on
    #: schedule but queue inside the executor rather than growing threads
    #: without bound.
    max_outstanding: int = 64

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise LoadLabError(
                f"unknown arrival kind {self.kind!r} (expected one of {ARRIVAL_KINDS})"
            )
        if self.think_time_s < 0:
            raise LoadLabError(f"think_time_s must be >= 0, got {self.think_time_s}")
        if self.max_outstanding < 1:
            raise LoadLabError(
                f"max_outstanding must be >= 1, got {self.max_outstanding}"
            )


@dataclass(frozen=True)
class WorkloadMix:
    """Relative weights over request kinds plus their shape parameters."""

    benign: float = 1.0
    attack: float = 0.0
    garbage: float = 0.0
    slow_loris: float = 0.0
    batch: float = 0.0
    #: Images per ``batch`` request.
    batch_size: int = 4
    #: How long one slow-loris connection dribbles before giving up.
    slow_loris_hold_s: float = 1.0
    #: Distinct benign payloads in the rotation pool.
    pool_size: int = 8
    #: Distinct crafted attack payloads (crafting is expensive; keep small).
    attack_pool_size: int = 2

    def __post_init__(self) -> None:
        weights = self.weights()
        if any(value < 0 for value in weights.values()):
            raise LoadLabError(f"mix weights must be >= 0, got {weights}")
        if sum(weights.values()) <= 0:
            raise LoadLabError("mix weights must not all be zero")
        if self.batch_size < 1:
            raise LoadLabError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.slow_loris_hold_s <= 0:
            raise LoadLabError(
                f"slow_loris_hold_s must be > 0, got {self.slow_loris_hold_s}"
            )
        if self.pool_size < 1 or self.attack_pool_size < 1:
            raise LoadLabError("payload pool sizes must be >= 1")

    def weights(self) -> dict[str, float]:
        """``kind -> weight`` in :data:`REQUEST_KINDS` order."""
        return {
            "benign": self.benign,
            "attack": self.attack,
            "garbage": self.garbage,
            "slow_loris": self.slow_loris,
            "batch": self.batch,
        }

    def probabilities(self) -> dict[str, float]:
        """The weights normalized to sum to 1."""
        weights = self.weights()
        total = sum(weights.values())
        return {kind: value / total for kind, value in weights.items()}


@dataclass(frozen=True)
class ServerSpec:
    """The server under test and how the runner brings it up."""

    #: ``subprocess`` spawns ``repro serve`` as a child process (honest
    #: per-process telemetry), ``inprocess`` embeds a DetectionServer in
    #: the driver process (fast; dispatcher CPU includes the generator),
    #: ``external`` attaches to an already-running server.
    launch: str = "subprocess"
    workers: int = 2
    #: Connection front end: ``eventloop`` (the selectors loop) or
    #: ``threaded`` (thread-per-connection) — the comparison axis the
    #: async scenarios sweep.
    frontend: str = "eventloop"
    #: Dispatcher ↔ shard transport: ``shm`` slot rings or ``pipe``
    #: pickled frames. Only observable when ``workers`` > 0.
    transport: str = "shm"
    max_active: int = 4
    queue_depth: int = 64
    deadline_ms: float = 10_000.0
    input_size: tuple[int, int] = (16, 16)
    source_size: tuple[int, int] = (128, 128)
    #: Benign calibration holdout size for a self-launched server.
    holdout: int = 24
    percentile: float = 5.0
    algorithm: str = "bilinear"

    def __post_init__(self) -> None:
        if self.launch not in LAUNCH_KINDS:
            raise LoadLabError(
                f"unknown launch kind {self.launch!r} (expected one of {LAUNCH_KINDS})"
            )
        if self.workers < 0:
            raise LoadLabError(f"workers must be >= 0, got {self.workers}")
        if self.frontend not in FRONTEND_KINDS:
            raise LoadLabError(
                f"unknown frontend {self.frontend!r} (expected one of {FRONTEND_KINDS})"
            )
        if self.transport not in TRANSPORT_KINDS:
            raise LoadLabError(
                f"unknown transport {self.transport!r} (expected one of {TRANSPORT_KINDS})"
            )
        if self.holdout < 20:
            # calibrate() needs a meaningful holdout; match the CLI's floor.
            raise LoadLabError(f"holdout must be >= 20 images, got {self.holdout}")


@dataclass(frozen=True)
class Scenario:
    """One frozen, named, reproducible load experiment."""

    name: str
    profile: LoadProfile = field(default_factory=LoadProfile)
    arrival: ArrivalModel = field(default_factory=ArrivalModel)
    mix: WorkloadMix = field(default_factory=WorkloadMix)
    server: ServerSpec = field(default_factory=ServerSpec)
    seed: int = 0
    description: str = ""
    #: Resource sampler period for the dispatcher + shard series.
    sample_period_s: float = 0.2
    #: Bootstrap resamples behind every confidence interval.
    bootstrap_resamples: int = 200
    #: Client-side socket timeout per request.
    client_timeout_s: float = 30.0
    #: Client retries on 429/503/transport (0 = measure every response
    #: as-is; raise only when the server under test closes connections
    #: between requests, e.g. scripted fakes).
    client_retries: int = 0
    #: Safety cap per level (None = bounded by the level duration alone).
    max_requests_per_level: int | None = None
    #: Unrecorded benign requests fired before level 0, so cold caches
    #: (shard plan compilation, operator memos) don't distort the first
    #: level's latencies.
    warmup_requests: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise LoadLabError("scenario name must be non-empty")
        if self.sample_period_s <= 0:
            raise LoadLabError(
                f"sample_period_s must be > 0, got {self.sample_period_s}"
            )
        if self.bootstrap_resamples < 1:
            raise LoadLabError(
                f"bootstrap_resamples must be >= 1, got {self.bootstrap_resamples}"
            )
        if self.client_retries < 0:
            raise LoadLabError(f"client_retries must be >= 0, got {self.client_retries}")
        if self.max_requests_per_level is not None and self.max_requests_per_level < 1:
            raise LoadLabError(
                f"max_requests_per_level must be >= 1, got {self.max_requests_per_level}"
            )
        if self.warmup_requests < 0:
            raise LoadLabError(
                f"warmup_requests must be >= 0, got {self.warmup_requests}"
            )

    # -- serialization --------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready nested mapping (tuples become lists)."""
        payload = asdict(self)
        payload["server"]["input_size"] = list(self.server.input_size)
        payload["server"]["source_size"] = list(self.server.source_size)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Scenario":
        if not isinstance(payload, Mapping):
            raise LoadLabError(f"scenario payload must be a mapping, got {type(payload).__name__}")
        data = dict(payload)
        try:
            profile = LoadProfile(**data.pop("profile", {}))
            arrival = ArrivalModel(**data.pop("arrival", {}))
            mix = WorkloadMix(**data.pop("mix", {}))
            server_fields = dict(data.pop("server", {}))
            for key in ("input_size", "source_size"):
                if key in server_fields:
                    server_fields[key] = tuple(server_fields[key])
            server = ServerSpec(**server_fields)
            return cls(
                profile=profile, arrival=arrival, mix=mix, server=server, **data
            )
        except TypeError as exc:
            raise LoadLabError(f"malformed scenario payload: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LoadLabError(f"scenario is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def fingerprint(self) -> str:
        """Stable short content hash; the ``description`` is cosmetic and
        excluded, everything that shapes the run is included."""
        payload = self.as_dict()
        payload.pop("description", None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def scaled(self, duration_scale: float) -> "Scenario":
        """A copy with every level duration multiplied by *duration_scale*
        (CI and benchmarks run the same shapes at a fraction of the time)."""
        if duration_scale <= 0:
            raise LoadLabError(f"duration_scale must be > 0, got {duration_scale}")
        if duration_scale == 1.0:
            return self
        profile = replace(
            self.profile,
            level_duration_s=self.profile.level_duration_s * duration_scale,
        )
        return replace(self, profile=profile)

    def with_seed(self, seed: int) -> "Scenario":
        return replace(self, seed=int(seed))


def load_scenario(path: str | Path) -> Scenario:
    """Read one scenario spec from a JSON file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LoadLabError(f"cannot read scenario {path}: {exc}") from exc
    return Scenario.from_json(text)
