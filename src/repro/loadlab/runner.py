"""End-to-end scenario execution: launch, drive, sample, scrape, write.

:func:`run_scenario` is the one entry point behind ``repro loadlab run``:

1. compile the scenario's deterministic schedule and payload pools;
2. bring up the server under test (:class:`ServerHandle`): a ``repro
   serve`` **subprocess** (honest per-process telemetry), an **inprocess**
   :class:`~repro.serving.server.DetectionServer` (fast, for benches), or
   an **external** already-running server;
3. discover every pid to watch from ``/healthz`` (the dispatcher reports
   its own pid and each worker shard's) and start the
   :class:`~repro.loadlab.sampler.ResourceSampler`;
4. scrape ``/metrics``, run the :class:`~repro.loadlab.engine.LoadEngine`,
   scrape again;
5. assemble + validate the schema-versioned result
   (:mod:`repro.loadlab.results`) and optionally write it under
   ``out_dir`` as ``<name>-<fingerprint>.json``.
"""

from __future__ import annotations

import json
import os
import platform
import queue
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.datasets.synthetic import generate_image
from repro.errors import LoadLabError, ServingError
from repro.imaging.image import as_uint8
from repro.imaging.png import write_png
from repro.loadlab.engine import LoadEngine
from repro.loadlab.results import build_result, validate_result
from repro.loadlab.sampler import ResourceSampler
from repro.loadlab.scenario import Scenario
from repro.loadlab.schedule import compile_schedule, schedule_digest
from repro.loadlab.workload import build_payloads
from repro.serving.client import DetectionClient

__all__ = ["ServerHandle", "launch_server", "result_path", "run_scenario"]

#: Seed-stream namespace for the subprocess launcher's calibration holdout.
_HOLDOUT_STREAM = 90001
#: How long to wait for a launched server to answer ready on /healthz.
_READY_TIMEOUT_S = 120.0


class ServerHandle:
    """One launched (or attached) server under test."""

    def __init__(
        self,
        mode: str,
        host: str,
        port: int,
        *,
        process: subprocess.Popen | None = None,
        server=None,
        holdout_dir: tempfile.TemporaryDirectory | None = None,
    ) -> None:
        self.mode = mode
        self.host = host
        self.port = port
        self.process = process
        self.server = server
        self._holdout_dir = holdout_dir

    def stop(self) -> None:
        """Tear down whatever we own; attaching (``external``) owns nothing."""
        if self.server is not None:
            self.server.shutdown()
            self.server = None
        if self.process is not None:
            proc = self.process
            self.process = None
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)  # graceful drain
                try:
                    proc.wait(timeout=30.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10.0)
            if proc.stdout is not None:
                proc.stdout.close()
        if self._holdout_dir is not None:
            self._holdout_dir.cleanup()
            self._holdout_dir = None


def _write_holdout(scenario: Scenario, directory: Path) -> int:
    """Benign calibration PNGs for a subprocess launch, seeded off the
    scenario so calibration (and thus thresholds) is reproducible."""
    for index in range(scenario.server.holdout):
        image = generate_image(
            scenario.server.source_size,
            np.random.default_rng((scenario.seed, _HOLDOUT_STREAM, index)),
            family="neurips",
        )
        write_png(directory / f"holdout-{index:03d}.png", as_uint8(image))
    return scenario.server.holdout


def _launch_subprocess(scenario: Scenario) -> ServerHandle:
    spec = scenario.server
    holdout_dir = tempfile.TemporaryDirectory(prefix="loadlab-holdout-")
    _write_holdout(scenario, Path(holdout_dir.name))
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host", "127.0.0.1",
        "--port", "0",
        "--input-size", str(spec.input_size[0]), str(spec.input_size[1]),
        "--algorithm", spec.algorithm,
        "--holdout", holdout_dir.name,
        "--percentile", str(spec.percentile),
        "--max-active", str(spec.max_active),
        "--queue-depth", str(spec.queue_depth),
        "--deadline-ms", str(spec.deadline_ms),
        "--workers", str(spec.workers),
        "--frontend", spec.frontend,
        "--transport", spec.transport,
    ]
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
    try:
        process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
    except OSError as exc:
        holdout_dir.cleanup()
        raise LoadLabError(f"cannot launch server subprocess: {exc}") from exc
    try:
        host, port = _await_serving_line(process)
    except LoadLabError:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
        if process.stdout is not None:
            process.stdout.close()
        holdout_dir.cleanup()
        raise
    return ServerHandle(
        "subprocess", host, port, process=process, holdout_dir=holdout_dir
    )


def _await_serving_line(process: subprocess.Popen) -> tuple[str, int]:
    """Block until the child prints ``serving on http://host:port``.

    A reader thread feeds lines through a queue so a wedged child hits the
    timeout instead of hanging us on ``readline``; the thread keeps
    draining stdout afterwards so the pipe can never fill and block the
    server's own prints.
    """
    lines: "queue.Queue[str | None]" = queue.Queue()

    def drain() -> None:
        assert process.stdout is not None
        for line in process.stdout:
            lines.put(line)
        lines.put(None)

    threading.Thread(target=drain, name="loadlab-server-stdout", daemon=True).start()
    seen: list[str] = []
    deadline = time.monotonic() + _READY_TIMEOUT_S
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise LoadLabError(
                f"server did not announce its address within {_READY_TIMEOUT_S}s; "
                f"output so far: {''.join(seen)[-2000:]!r}"
            )
        try:
            line = lines.get(timeout=remaining)
        except queue.Empty:
            continue
        if line is None:
            raise LoadLabError(
                f"server exited before serving (status {process.poll()}); "
                f"output: {''.join(seen)[-2000:]!r}"
            )
        seen.append(line)
        if line.startswith("serving on http://"):
            address = line.split("http://", 1)[1].split()[0]
            host, _, port = address.rpartition(":")
            return host, int(port)


def _launch_inprocess(scenario: Scenario) -> ServerHandle:
    # Imported lazily: the inprocess path is the only place the runner
    # needs the server side of the serving package.
    from repro.serving.pipeline import ProtectedPipeline
    from repro.serving.server import DetectionServer, ServerConfig

    spec = scenario.server
    holdout = [
        generate_image(
            spec.source_size,
            np.random.default_rng((scenario.seed, _HOLDOUT_STREAM, index)),
            family="neurips",
        )
        for index in range(spec.holdout)
    ]
    pipeline = ProtectedPipeline(spec.input_size, algorithm=spec.algorithm)
    pipeline.calibrate(holdout, percentile=spec.percentile)
    server = DetectionServer(
        pipeline,
        ServerConfig(
            host="127.0.0.1",
            port=0,
            max_active=spec.max_active,
            queue_depth=spec.queue_depth,
            deadline_ms=spec.deadline_ms,
            workers=spec.workers,
            frontend=spec.frontend,
            transport=spec.transport,
        ),
    )
    server.start()
    host, port = server.address
    return ServerHandle("inprocess", host, port, server=server)


def launch_server(
    scenario: Scenario, *, host: str | None = None, port: int | None = None
) -> ServerHandle:
    """Bring up (or attach to) the scenario's server under test."""
    launch = scenario.server.launch
    if launch == "external":
        if host is None or port is None:
            raise LoadLabError(
                "external launch needs an explicit host and port "
                "(repro loadlab run --host H --port P)"
            )
        return ServerHandle("external", host, int(port))
    if host is not None or port is not None:
        raise LoadLabError(
            f"--host/--port only apply to external launch, not {launch!r}"
        )
    if launch == "subprocess":
        return _launch_subprocess(scenario)
    return _launch_inprocess(scenario)


def _discover_pids(handle: ServerHandle, client: DetectionClient) -> dict[str, int]:
    """Role → pid for every process worth sampling, from ``/healthz``.

    The dispatcher advertises its own pid plus each worker shard's, so
    this works identically for subprocess, inprocess, and same-host
    external servers. An external server predating the pid fields yields
    an empty map — the run proceeds without resource telemetry.
    """
    try:
        _, payload = client.health()
    except (OSError, ValueError) as exc:
        raise LoadLabError(f"cannot read /healthz for pid discovery: {exc}") from exc
    pids: dict[str, int] = {}
    dispatcher = payload.get("pid")
    if isinstance(dispatcher, int):
        pids["dispatcher"] = dispatcher
    workers = payload.get("workers") or {}
    for worker_id, pid in (workers.get("pids") or {}).items():
        if isinstance(pid, int) and pid > 0:
            pids[f"worker-{worker_id}"] = pid
    if handle.mode == "subprocess" and handle.process is not None:
        # The health pid must agree with the child we spawned.
        pids.setdefault("dispatcher", handle.process.pid)
    return pids


def _host_info() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
    }


def result_path(out_dir: str | Path, scenario: Scenario) -> Path:
    """Where :func:`run_scenario` writes the result JSON for *scenario*."""
    return Path(out_dir) / f"{scenario.name}-{scenario.fingerprint()}.json"


def run_scenario(
    scenario: Scenario,
    *,
    host: str | None = None,
    port: int | None = None,
    out_dir: str | Path | None = None,
    duration_scale: float = 1.0,
    clock=None,
) -> dict:
    """Execute one scenario end to end; returns the validated result dict.

    *duration_scale* shrinks or stretches every level (CI smoke runs the
    same shapes at a fraction of the time). With *out_dir* set, the result
    is also written to :func:`result_path`.
    """
    scenario = scenario.scaled(duration_scale)
    schedule = compile_schedule(scenario)
    digest = schedule_digest(scenario, schedule)
    payloads = build_payloads(scenario)
    wall_clock = clock or time

    handle = launch_server(scenario, host=host, port=port)
    sampler: ResourceSampler | None = None
    try:
        client = DetectionClient(
            handle.host,
            handle.port,
            timeout_s=scenario.client_timeout_s,
            max_retries=max(scenario.client_retries, 1),
        )
        try:
            client.wait_ready(timeout_s=_READY_TIMEOUT_S)
            pids = _discover_pids(handle, client)
            if pids:
                sampler = ResourceSampler(
                    pids, period_s=scenario.sample_period_s
                ).start()
            metrics_before = client.metrics_text()
            engine = LoadEngine(
                scenario,
                schedule,
                payloads,
                handle.host,
                handle.port,
                clock=clock,
            )
            started = wall_clock.monotonic()
            records = engine.run()
            wall_s = wall_clock.monotonic() - started
            metrics_after = client.metrics_text()
        finally:
            client.close()
        resources = sampler.stop() if sampler is not None else {}
        sampler = None
    except ServingError as exc:
        raise LoadLabError(f"scenario {scenario.name!r} failed: {exc}") from exc
    finally:
        if sampler is not None:
            sampler.stop()
        handle.stop()

    result = build_result(
        scenario,
        schedule,
        records,
        digest=digest,
        resources=resources,
        pids=pids,
        metrics_before=metrics_before,
        metrics_after=metrics_after,
        host=_host_info(),
        wall_s=wall_s,
        duration_scale=duration_scale,
    )
    validate_result(result)
    if out_dir is not None:
        path = result_path(out_dir, scenario)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        result["written_to"] = str(path)
    return result
