"""Compile a scenario into a deterministic offered-load schedule.

The schedule is everything about a run that is decided *before* the first
request leaves the machine, derived entirely from the scenario and its
seed — so two runs of the same scenario offer the identical load:

* **open loop** (Poisson): every arrival instant inside each level, drawn
  from an exponential inter-arrival process, plus each arrival's request
  kind. Arrival times and kinds come from *independent* seeded streams,
  so changing the workload mix reshuffles kinds without moving a single
  arrival instant.
* **closed loop**: the client count per level plus one deterministic
  per-client :class:`KindStream` — the n-th request of client c in level
  l always has the same kind, no matter how fast the server answers.

:func:`schedule_digest` hashes the compiled schedule into a short id the
results JSON records; equal digests mean equal offered load (asserted in
the tests and the acceptance checklist).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.loadlab.scenario import REQUEST_KINDS, Scenario

__all__ = [
    "KindStream",
    "LevelSchedule",
    "PlannedRequest",
    "compile_schedule",
    "kind_stream",
    "schedule_digest",
]

#: Distinct large primes namespace the seed streams so arrival times,
#: request kinds, and per-client streams never alias each other.
_ARRIVAL_STREAM = 7919
_KIND_STREAM = 104729
_CLIENT_STREAM = 15485863


@dataclass(frozen=True)
class PlannedRequest:
    """One open-loop arrival: when (offset into the level) and what."""

    at_s: float
    kind: str


@dataclass(frozen=True)
class LevelSchedule:
    """One profile level, fully planned."""

    index: int
    intensity: float
    duration_s: float
    mode: str  # "closed" | "open"
    #: Closed-loop concurrent clients (0 in open mode).
    clients: int
    #: Open-loop arrivals in time order (empty in closed mode).
    arrivals: tuple[PlannedRequest, ...]


class KindStream:
    """Deterministic request-kind sequence for one closed-loop client.

    Draw ``n`` kinds, restart from the same seed, draw ``n`` again: the
    two sequences are identical. Streams for different (level, client)
    pairs are independent.
    """

    def __init__(self, seed: int, level_index: int, client_index: int, mix) -> None:
        self._rng = np.random.default_rng(
            (seed, _CLIENT_STREAM, level_index, client_index)
        )
        probabilities = mix.probabilities()
        self._kinds = [kind for kind in REQUEST_KINDS if probabilities[kind] > 0]
        self._probs = np.array([probabilities[kind] for kind in self._kinds])

    def next(self) -> str:
        if len(self._kinds) == 1:
            return self._kinds[0]
        return str(self._rng.choice(self._kinds, p=self._probs))

    def take(self, count: int) -> list[str]:
        return [self.next() for _ in range(count)]


def kind_stream(scenario: Scenario, level_index: int, client_index: int) -> KindStream:
    """The kind stream for one (level, client) pair of *scenario*."""
    return KindStream(scenario.seed, level_index, client_index, scenario.mix)


def _open_level_arrivals(
    scenario: Scenario, level_index: int, rate: float, duration_s: float
) -> tuple[PlannedRequest, ...]:
    time_rng = np.random.default_rng((scenario.seed, _ARRIVAL_STREAM, level_index))
    kind_rng = np.random.default_rng((scenario.seed, _KIND_STREAM, level_index))
    probabilities = scenario.mix.probabilities()
    kinds = [kind for kind in REQUEST_KINDS if probabilities[kind] > 0]
    probs = np.array([probabilities[kind] for kind in kinds])
    arrivals: list[PlannedRequest] = []
    at_s = 0.0
    cap = scenario.max_requests_per_level
    while True:
        at_s += float(time_rng.exponential(1.0 / rate))
        if at_s >= duration_s:
            break
        kind = kinds[0] if len(kinds) == 1 else str(kind_rng.choice(kinds, p=probs))
        arrivals.append(PlannedRequest(at_s, kind))
        if cap is not None and len(arrivals) >= cap:
            break
    return tuple(arrivals)


def compile_schedule(scenario: Scenario) -> tuple[LevelSchedule, ...]:
    """Expand *scenario* into per-level plans, reproducibly from its seed."""
    open_loop = scenario.arrival.kind == "poisson"
    schedules = []
    for index, level in enumerate(scenario.profile.levels()):
        if open_loop:
            schedules.append(
                LevelSchedule(
                    index=index,
                    intensity=level.intensity,
                    duration_s=level.duration_s,
                    mode="open",
                    clients=0,
                    arrivals=_open_level_arrivals(
                        scenario, index, level.intensity, level.duration_s
                    ),
                )
            )
        else:
            schedules.append(
                LevelSchedule(
                    index=index,
                    intensity=level.intensity,
                    duration_s=level.duration_s,
                    mode="closed",
                    clients=max(1, round(level.intensity)),
                    arrivals=(),
                )
            )
    return tuple(schedules)


#: Closed-loop digests cover this many kind draws per client — enough to
#: pin the stream identity without materializing an unbounded sequence.
_DIGEST_DRAWS = 64


def schedule_digest(scenario: Scenario, schedule: tuple[LevelSchedule, ...]) -> str:
    """Short stable hash of the offered load: equal digest ⇔ equal plan."""
    payload: list = []
    for level in schedule:
        entry: dict = {
            "index": level.index,
            "intensity": round(level.intensity, 9),
            "duration_s": round(level.duration_s, 9),
            "mode": level.mode,
            "clients": level.clients,
            "arrivals": [
                [round(item.at_s, 9), item.kind] for item in level.arrivals
            ],
        }
        if level.mode == "closed":
            entry["kind_streams"] = [
                kind_stream(scenario, level.index, client).take(_DIGEST_DRAWS)
                for client in range(level.clients)
            ]
        payload.append(entry)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
