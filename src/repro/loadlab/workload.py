"""Seeded request payload pools for every workload kind.

Payloads are built once per run and rotated round-robin, so the engine's
hot loop does no image synthesis, attack crafting, or PNG encoding —
exactly like the PR 3 bench pre-encoded its uploads. The pools are pure
functions of ``(scenario.seed, scenario.server)``:

* ``benign`` — synthetic NeurIPS-like scenes at the scenario's source
  size, PNG-encoded;
* ``attack`` — real scaling-attack images crafted with
  :func:`repro.attacks.strong.craft_attack_image` hiding a Caltech-like
  target (built only when the mix weights them — crafting is expensive);
* ``garbage`` — undecodable bodies: raw noise and a truncated PNG, the
  frames a hostile or broken client actually sends;
* ``batch`` — length-prefixed :func:`~repro.serving.wire.pack_batch`
  bodies of ``batch_size`` benign images.

Slow-loris needs no payload (it never completes a request).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import AttackConfig
from repro.attacks.strong import craft_attack_image
from repro.datasets.synthetic import generate_image
from repro.errors import LoadLabError
from repro.imaging.image import as_uint8
from repro.imaging.png import encode_png
from repro.imaging.scaling import resize
from repro.loadlab.scenario import Scenario
from repro.serving.wire import encode_image_payload, pack_batch

__all__ = ["PayloadPool", "build_payloads"]

#: Seed-stream namespaces (see :mod:`repro.loadlab.schedule`).
_BENIGN_STREAM = 2017
_TARGET_STREAM = 4034
_GARBAGE_STREAM = 31337


@dataclass(frozen=True)
class PayloadPool:
    """Pre-encoded request bodies, one tuple per kind."""

    benign: tuple[bytes, ...]
    attack: tuple[bytes, ...]
    garbage: tuple[bytes, ...]
    batch: tuple[bytes, ...]

    def payload_for(self, kind: str, index: int) -> bytes:
        """The *index*-th request's body for *kind* (round-robin)."""
        pool = getattr(self, kind, None)
        if pool is None:
            raise LoadLabError(f"kind {kind!r} has no payload pool")
        if not pool:
            raise LoadLabError(f"payload pool for {kind!r} is empty")
        return pool[index % len(pool)]


def _benign_images(scenario: Scenario, count: int) -> list[np.ndarray]:
    return [
        generate_image(
            scenario.server.source_size,
            np.random.default_rng((scenario.seed, _BENIGN_STREAM, index)),
            family="neurips",
        )
        for index in range(count)
    ]


def _attack_payloads(scenario: Scenario) -> tuple[bytes, ...]:
    originals = _benign_images(scenario, scenario.mix.attack_pool_size)
    payloads = []
    for index, original in enumerate(originals):
        target_source = generate_image(
            scenario.server.source_size,
            np.random.default_rng((scenario.seed, _TARGET_STREAM, index)),
            family="caltech",
        )
        target = resize(
            target_source, scenario.server.input_size, scenario.server.algorithm
        )
        result = craft_attack_image(
            original,
            target,
            algorithm=scenario.server.algorithm,
            config=AttackConfig(epsilon=4.0),
        )
        payloads.append(encode_image_payload(as_uint8(result.attack_image)))
    return tuple(payloads)


def _garbage_payloads(scenario: Scenario) -> tuple[bytes, ...]:
    """Undecodable bodies: pure noise, and a PNG truncated mid-stream so
    the sniffer accepts it but the decoder must reject it."""
    rng = np.random.default_rng((scenario.seed, _GARBAGE_STREAM))
    noise = rng.integers(0, 256, size=2048, dtype=np.uint8).tobytes()
    valid_png = encode_png(
        as_uint8(generate_image((32, 32), rng, family="neurips"))
    )
    truncated = valid_png[: len(valid_png) // 2]
    return (noise, truncated)


def build_payloads(scenario: Scenario) -> PayloadPool:
    """Build every pool the scenario's mix actually weights."""
    weights = scenario.mix.weights()
    needs_benign = weights["benign"] > 0 or weights["batch"] > 0
    benign: tuple[bytes, ...] = ()
    if needs_benign:
        benign = tuple(
            encode_image_payload(as_uint8(image))
            for image in _benign_images(scenario, scenario.mix.pool_size)
        )
    batch: tuple[bytes, ...] = ()
    if weights["batch"] > 0:
        size = scenario.mix.batch_size
        batch = tuple(
            pack_batch([benign[(start + i) % len(benign)] for i in range(size)])
            for start in range(len(benign))
        )
    return PayloadPool(
        benign=benign,
        attack=_attack_payloads(scenario) if weights["attack"] > 0 else (),
        garbage=_garbage_payloads(scenario) if weights["garbage"] > 0 else (),
        batch=batch,
    )
