"""The built-in scenario catalog: named, frozen load experiments.

Every scenario here is constructed once at import time (so a typo in a
spec fails the test suite, not a benchmark night) and addressed by name
through ``repro loadlab run <name>``. The checked-in JSON specs under
``benchmarks/scenarios/`` are serialized copies of the benchmark-facing
entries; ``tests/test_loadlab_scenario.py`` pins the two representations
together so neither can drift silently.
"""

from __future__ import annotations

from repro.errors import LoadLabError
from repro.loadlab.scenario import (
    ArrivalModel,
    LoadProfile,
    Scenario,
    ServerSpec,
    WorkloadMix,
)

__all__ = ["builtin_scenarios", "get_scenario"]


def _build() -> dict[str, Scenario]:
    scenarios = [
        Scenario(
            name="smoke-ramp",
            description=(
                "CI smoke: a tiny two-level ramp against a 2-shard "
                "subprocess server — proves the whole lab end to end."
            ),
            profile=LoadProfile(kind="ramp", base=1.0, peak=2.0, steps=2,
                                level_duration_s=2.0),
            arrival=ArrivalModel(kind="closed"),
            mix=WorkloadMix(benign=1.0, pool_size=4),
            server=ServerSpec(launch="subprocess", workers=2, max_active=4,
                              queue_depth=64),
            sample_period_s=0.1,
            bootstrap_resamples=100,
            warmup_requests=2,
        ),
        Scenario(
            name="ramp",
            description="Closed-loop client ramp 1 -> 8 over four levels.",
            profile=LoadProfile(kind="ramp", base=1.0, peak=8.0, steps=4,
                                level_duration_s=5.0),
            arrival=ArrivalModel(kind="closed"),
            mix=WorkloadMix(benign=1.0),
            server=ServerSpec(launch="subprocess", workers=2),
        ),
        Scenario(
            name="poisson-steady",
            description=(
                "Open-loop Poisson arrivals at a steady 10 req/s — offered "
                "load independent of service time, unlike a closed loop."
            ),
            profile=LoadProfile(kind="constant", base=10.0, steps=3,
                                level_duration_s=5.0),
            arrival=ArrivalModel(kind="poisson", max_outstanding=32),
            mix=WorkloadMix(benign=1.0),
            server=ServerSpec(launch="subprocess", workers=2),
        ),
        Scenario(
            name="spike",
            description=(
                "A 3x traffic spike in the middle of a calm run — does the "
                "admission queue shed load and recover?"
            ),
            profile=LoadProfile(kind="spike", base=4.0, peak=12.0, steps=5,
                                level_duration_s=4.0),
            arrival=ArrivalModel(kind="poisson", max_outstanding=64),
            mix=WorkloadMix(benign=1.0),
            server=ServerSpec(launch="subprocess", workers=2, max_active=4,
                              queue_depth=16, deadline_ms=2000.0),
        ),
        Scenario(
            name="diurnal",
            description="Two day/night cycles of open-loop load, 2 -> 10 req/s.",
            profile=LoadProfile(kind="diurnal", base=2.0, peak=10.0, steps=8,
                                periods=2, level_duration_s=3.0),
            arrival=ArrivalModel(kind="poisson", max_outstanding=64),
            mix=WorkloadMix(benign=1.0),
            server=ServerSpec(launch="subprocess", workers=2),
        ),
        Scenario(
            name="adversarial-mix",
            description=(
                "What a deployed screen actually faces: mostly benign "
                "traffic with attack images, garbage frames, slow-loris "
                "holds, and batch uploads mixed in."
            ),
            profile=LoadProfile(kind="constant", base=4.0, steps=3,
                                level_duration_s=5.0),
            arrival=ArrivalModel(kind="closed"),
            mix=WorkloadMix(benign=0.55, attack=0.15, garbage=0.15,
                            slow_loris=0.05, batch=0.10,
                            slow_loris_hold_s=1.0),
            server=ServerSpec(launch="subprocess", workers=2),
        ),
        # -- benchmark-facing: the old bench_serving_* sweeps as scenarios ----
        Scenario(
            name="serving-load",
            description=(
                "The bench_serving_load sweep: closed-loop concurrency "
                "1 -> 8 against an in-process server, benign PNG uploads."
            ),
            profile=LoadProfile(kind="ramp", base=1.0, peak=8.0, steps=4,
                                level_duration_s=3.0),
            arrival=ArrivalModel(kind="closed"),
            mix=WorkloadMix(benign=1.0),
            server=ServerSpec(launch="inprocess", workers=0, max_active=8,
                              queue_depth=256, deadline_ms=60_000.0),
            max_requests_per_level=200,
            warmup_requests=8,
        ),
        Scenario(
            name="worker-scaling-0",
            description="bench_serving_workers baseline: in-process scoring.",
            profile=LoadProfile(kind="constant", base=4.0, steps=1,
                                level_duration_s=3.0),
            arrival=ArrivalModel(kind="closed"),
            mix=WorkloadMix(benign=1.0),
            server=ServerSpec(launch="inprocess", workers=0, max_active=4,
                              queue_depth=256, deadline_ms=60_000.0),
            max_requests_per_level=200,
            warmup_requests=8,
        ),
        Scenario(
            name="serving-async-highconc",
            description=(
                "The event-loop front end's home turf: closed-loop "
                "keep-alive concurrency doubling 64 -> 512 against a "
                "subprocess server. Compare against the same spec with "
                "server.frontend='threaded' to price thread-per-connection."
            ),
            profile=LoadProfile(kind="geometric", base=64.0, peak=512.0,
                                steps=4, level_duration_s=5.0),
            arrival=ArrivalModel(kind="closed"),
            mix=WorkloadMix(benign=1.0, pool_size=8),
            server=ServerSpec(launch="subprocess", workers=2,
                              frontend="eventloop", transport="shm",
                              max_active=8, queue_depth=512,
                              deadline_ms=60_000.0),
            client_timeout_s=120.0,
            max_requests_per_level=4000,
            warmup_requests=8,
        ),
        Scenario(
            name="serving-async-soak",
            description=(
                "A one-minute keep-alive soak on the event-loop front end "
                "with adversarial seasoning: slow-loris holds and garbage "
                "frames ride along so connection sweeping and clean 400s "
                "are exercised continuously, not just at the fault wall."
            ),
            profile=LoadProfile(kind="constant", base=32.0, steps=6,
                                level_duration_s=10.0),
            arrival=ArrivalModel(kind="closed"),
            mix=WorkloadMix(benign=0.85, garbage=0.05, slow_loris=0.05,
                            batch=0.05, slow_loris_hold_s=2.0),
            server=ServerSpec(launch="subprocess", workers=2,
                              frontend="eventloop", transport="shm",
                              max_active=8, queue_depth=256,
                              deadline_ms=60_000.0),
            client_timeout_s=120.0,
            max_requests_per_level=5000,
            warmup_requests=8,
        ),
        Scenario(
            name="worker-scaling-1",
            description="bench_serving_workers: one scoring shard.",
            profile=LoadProfile(kind="constant", base=4.0, steps=1,
                                level_duration_s=3.0),
            arrival=ArrivalModel(kind="closed"),
            mix=WorkloadMix(benign=1.0),
            server=ServerSpec(launch="inprocess", workers=1, max_active=4,
                              queue_depth=256, deadline_ms=60_000.0),
            max_requests_per_level=200,
            warmup_requests=8,
        ),
        Scenario(
            name="worker-scaling-4",
            description="bench_serving_workers: four scoring shards.",
            profile=LoadProfile(kind="constant", base=4.0, steps=1,
                                level_duration_s=3.0),
            arrival=ArrivalModel(kind="closed"),
            mix=WorkloadMix(benign=1.0),
            server=ServerSpec(launch="inprocess", workers=4, max_active=4,
                              queue_depth=256, deadline_ms=60_000.0),
            max_requests_per_level=200,
            warmup_requests=8,
        ),
    ]
    return {scenario.name: scenario for scenario in scenarios}


_BUILTINS = _build()


def builtin_scenarios() -> dict[str, Scenario]:
    """Name → scenario for every built-in (a fresh dict each call)."""
    return dict(_BUILTINS)


def get_scenario(name: str) -> Scenario:
    """Look one built-in up by name; :class:`LoadLabError` on a miss."""
    try:
        return _BUILTINS[name]
    except KeyError:
        known = ", ".join(sorted(_BUILTINS))
        raise LoadLabError(
            f"unknown scenario {name!r} (built-ins: {known})"
        ) from None
