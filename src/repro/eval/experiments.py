"""Experiment runners — one per paper table and figure.

Each function consumes an :class:`~repro.eval.data.ExperimentData` (built
by :func:`~repro.eval.data.prepare_data`) and returns an
:class:`ExperimentResult` whose rows mirror the paper's artifact. The
paper's own numbers are attached as ``paper_reference`` so benchmark output
and EXPERIMENTS.md can show paper-vs-measured side by side.

Every runner registers itself in :mod:`repro.eval.registry` with the
:func:`~repro.eval.registry.experiment` decorator -- that registry is the
authoritative index (``repro exp list`` prints it; DESIGN.md narrates
the artifact map). Runners remain plain functions: calling one directly
is exactly equivalent to running it through the mediator, minus
caching and stage timings.

Threshold calibrations consult the ambient run context
(:mod:`repro.eval.stages`): inside a mediator run with a cache attached,
a previously computed threshold for the same (data, detector, strategy)
is installed without rescoring the corpus; outside a mediator run the
hooks are no-ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.analysis import ImageAnalysis
from repro.core.evaluation import evaluate_decisions
from repro.core.ensemble import build_default_ensemble
from repro.core.filtering_detector import FilteringDetector
from repro.core.pipeline import evaluate_detector, evaluate_ensemble
from repro.core.result import ThresholdRule
from repro.core.scaling_detector import ScalingDetector
from repro.core.steganalysis_detector import SteganalysisDetector
from repro.core.thresholds import auc, threshold_accuracy
from repro.eval.data import ExperimentData
from repro.eval.registry import experiment
from repro.eval.stages import cached_calibration, cached_ensemble_calibration, stage
from repro.eval.tables import format_number, format_percent, metrics_row, render_table
from repro.imaging.metrics import histogram_intersection, psnr

__all__ = [
    "ExperimentResult",
    "table1_input_sizes",
    "fig8_threshold_search",
    "fig9_fig10_scaling_distributions",
    "table2_scaling_whitebox",
    "table3_scaling_blackbox",
    "fig11_fig12_filtering_distributions",
    "table4_filtering_whitebox",
    "table5_filtering_blackbox",
    "fig13_csp_distribution",
    "table6_steganalysis",
    "table8_ensemble",
    "table9_missed_attacks",
    "appendix_psnr",
    "ablation_histogram_metric",
    "ablation_adaptive_attacks",
    "ablation_prevention_defenses",
    "ablation_benign_transforms",
    "ablation_surface_sweep",
    "ablation_jpeg_reencoding",
]


@dataclass
class ExperimentResult:
    """Rows reproducing one paper artifact, plus the paper's numbers."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]]
    paper_reference: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""
    #: per-stage wall seconds (prepare/attack-gen/calibrate/score/render);
    #: populated by the mediator, empty on direct runner calls. Never
    #: rendered into ``to_text`` so result files stay byte-comparable.
    timings: dict[str, float] = field(default_factory=dict)

    def to_text(self) -> str:
        parts = [render_table(self.rows, title=f"[{self.experiment_id}] {self.title} (measured)")]
        if self.paper_reference:
            parts.append(render_table(self.paper_reference, title="paper reported"))
        if self.notes:
            parts.append(self.notes)
        return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# T1 — background table
# ---------------------------------------------------------------------------

@experiment(
    "T1",
    title="Input sizes for popular CNN models",
    needs_data=False,
    order=10,
)
def table1_input_sizes() -> ExperimentResult:
    """Paper Table 1: fixed input sizes of popular CNN models.

    Static background data; included so the benchmark suite covers every
    numbered table.
    """
    rows = [
        {"Model": "LeNet-5", "Size": "32*32"},
        {"Model": "VGG, ResNet, GoogleNet, MobileNet", "Size": "224*224"},
        {"Model": "AlexNet", "Size": "227*227"},
        {"Model": "Inception V3/V4", "Size": "299*299"},
        {"Model": "DAVE-2 Self-Driving", "Size": "200*66"},
    ]
    return ExperimentResult(
        experiment_id="T1",
        title="Input sizes for popular CNN models",
        rows=rows,
        paper_reference=rows,
        notes="Static table; motivates why downscaling (and the attack) is universal.",
    )


# ---------------------------------------------------------------------------
# scaling detector (F8, F9, F10, T2, T3)
# ---------------------------------------------------------------------------

def _scaling_detectors(data: ExperimentData) -> dict[str, ScalingDetector]:
    return {
        "mse": ScalingDetector(
            data.model_input_shape, algorithm=data.algorithm, metric="mse"
        ),
        "ssim": ScalingDetector(
            data.model_input_shape, algorithm=data.algorithm, metric="ssim"
        ),
    }


def _filtering_detectors() -> dict[str, FilteringDetector]:
    return {
        "mse": FilteringDetector(metric="mse"),
        "ssim": FilteringDetector(metric="ssim"),
    }


@experiment(
    "F8",
    title="Threshold selection curves, scaling detector (white-box)",
    order=20,
    kind="figure",
)
def fig8_threshold_search(data: ExperimentData, *, n_points: int = 41) -> ExperimentResult:
    """Fig. 8: accuracy as a function of candidate threshold (white-box).

    Sweeps ``n_points`` thresholds across the pooled score range for the
    scaling detector (both metrics) and marks the calibrated optimum.
    """
    rows: list[dict[str, Any]] = []
    for metric, detector in _scaling_detectors(data).items():
        benign = detector.scores(data.calibration.benign)
        attack = detector.scores(data.calibration.attacks)
        with stage("calibrate"):
            best = detector.calibrate(data.calibration.benign, data.calibration.attacks)
        lo = min(min(benign), min(attack))
        hi = max(max(benign), max(attack))
        grid = np.linspace(lo, hi, n_points)
        nearest_to_best = int(np.abs(grid - best.value).argmin())
        for index, value in enumerate(grid):
            rule = ThresholdRule(value=float(value), direction=detector.attack_direction)
            rows.append(
                {
                    "metric": metric,
                    "threshold": format_number(float(value)),
                    "accuracy": format_percent(threshold_accuracy(rule, benign, attack)),
                    "selected": "<-- best" if index == nearest_to_best else "",
                }
            )
        rows.append(
            {
                "metric": metric,
                "threshold": f"best={format_number(best.value)}",
                "accuracy": format_percent(threshold_accuracy(best, benign, attack)),
                "selected": "calibrated",
            }
        )
    return ExperimentResult(
        experiment_id="F8",
        title="Threshold selection curves, scaling detector (white-box)",
        rows=rows,
        paper_reference=[
            {"metric": "mse", "threshold": "1714.96", "note": "paper's selected optimum"},
            {"metric": "ssim", "threshold": "0.61", "note": "paper's selected optimum"},
        ],
        notes=(
            "Absolute threshold values depend on image statistics and sizes; the "
            "reproduced claim is that accuracy is near-flat at ~100% over a wide "
            "threshold band, so an automated search finds a reliable optimum."
        ),
    )


def _distribution_rows(
    label_to_scores: dict[str, list[float]], *, bins: int = 12
) -> list[dict[str, Any]]:
    """Summarize score populations the way the paper's histograms do."""
    rows = []
    for label, scores in label_to_scores.items():
        arr = np.asarray(scores, dtype=np.float64)
        rows.append(
            {
                "population": label,
                "n": arr.size,
                "mean": format_number(float(arr.mean())),
                "std": format_number(float(arr.std())),
                "min": format_number(float(arr.min())),
                "p50": format_number(float(np.median(arr))),
                "max": format_number(float(arr.max())),
            }
        )
    return rows


@experiment(
    "F9/F10",
    title="Scaling detector score distributions",
    aliases=("F9", "F10"),
    order=30,
    kind="figure",
)
def fig9_fig10_scaling_distributions(data: ExperimentData) -> ExperimentResult:
    """Figs. 9–10: MSE/SSIM score distributions for the scaling detector."""
    detectors = _scaling_detectors(data)
    populations: dict[str, list[float]] = {}
    for metric, detector in detectors.items():
        populations[f"{metric} benign (calibration)"] = detector.scores(data.calibration.benign)
        populations[f"{metric} attack (calibration)"] = detector.scores(data.calibration.attacks)
    rows = _distribution_rows(populations)
    return ExperimentResult(
        experiment_id="F9/F10",
        title="Scaling detector score distributions",
        rows=rows,
        paper_reference=[
            {"population": "mse benign", "mean": "218.6", "std": "217.6"},
            {"population": "ssim benign", "mean": "0.91", "std": "0.59 (as printed)"},
        ],
        notes=(
            "Reproduced claim: benign and attack populations are separated by "
            "orders of magnitude in MSE and by a wide SSIM gap, and the benign "
            "population is unimodal so percentile thresholds work."
        ),
    )


def _whitebox_table(
    experiment_id: str,
    title: str,
    detectors: dict[str, Any],
    data: ExperimentData,
    paper_reference: list[dict[str, Any]],
    notes: str = "",
) -> ExperimentResult:
    rows = []
    for metric, detector in detectors.items():
        with stage("calibrate"):
            rule = cached_calibration(
                detector,
                {"strategy": "midpoint"},
                lambda d=detector: d.calibrate(
                    data.calibration.benign, data.calibration.attacks
                ),
            )
        outcome = evaluate_detector(detector, data.evaluation)
        rows.append(
            {
                "Metric": metric.upper(),
                "Threshold": format_number(rule.value),
                **metrics_row(outcome.counts),
            }
        )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        rows=rows,
        paper_reference=paper_reference,
        notes=notes,
    )


@experiment(
    "T2",
    title="Scaling detection method, white-box setting",
    order=40,
)
def table2_scaling_whitebox(data: ExperimentData) -> ExperimentResult:
    """Table 2: scaling detector, white-box calibration, unseen evaluation."""
    return _whitebox_table(
        "T2",
        "Scaling detection method, white-box setting",
        _scaling_detectors(data),
        data,
        paper_reference=[
            {"Metric": "MSE", "Acc.": "99.9%", "Prec.": "100%", "Rec.": "99.9%", "FAR": "0.0%", "FRR": "0.1%"},
            {"Metric": "SSIM", "Acc.": "99.0%", "Prec.": "99.7%", "Rec.": "99.9%", "FAR": "0.3%", "FRR": "0.1%"},
        ],
    )


def _blackbox_table(
    experiment_id: str,
    title: str,
    detectors: dict[str, Any],
    data: ExperimentData,
    paper_reference: list[dict[str, Any]],
    percentiles: tuple[float, ...] = (1.0, 2.0, 3.0),
) -> ExperimentResult:
    rows = []
    for metric, detector in detectors.items():
        benign_scores = np.asarray(detector.scores(data.calibration.benign))
        for percentile in percentiles:
            with stage("calibrate"):
                cached_calibration(
                    detector,
                    {"strategy": "percentile", "percentile": percentile},
                    lambda d=detector, p=percentile: d.calibrate(
                        data.calibration.benign, percentile=p
                    ),
                )
            outcome = evaluate_detector(detector, data.evaluation)
            rows.append(
                {
                    "Metric": metric.upper(),
                    "Percentile": f"{percentile:g}%",
                    **metrics_row(outcome.counts),
                    "Mean": format_number(float(benign_scores.mean())),
                    "STD": format_number(float(benign_scores.std())),
                }
            )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        rows=rows,
        paper_reference=paper_reference,
        notes=(
            "FRR tracks the sacrificed percentile by construction; the reproduced "
            "claim is that FAR stays ~0 while FRR ≈ percentile, so 1% is the "
            "recommended setting."
        ),
    )


@experiment(
    "T3",
    title="Scaling detection method, black-box setting",
    order=50,
)
def table3_scaling_blackbox(data: ExperimentData) -> ExperimentResult:
    """Table 3: scaling detector, black-box percentile thresholds."""
    return _blackbox_table(
        "T3",
        "Scaling detection method, black-box setting",
        _scaling_detectors(data),
        data,
        paper_reference=[
            {"Metric": "MSE", "Percentile": "1%", "Acc.": "99.5%", "FAR": "0.0%", "FRR": "1.0%", "Mean": "218.6", "STD": "217.6"},
            {"Metric": "MSE", "Percentile": "2%", "Acc.": "99.0%", "FAR": "0.0%", "FRR": "2.0%"},
            {"Metric": "MSE", "Percentile": "3%", "Acc.": "98.5%", "FAR": "0.0%", "FRR": "3.0%"},
            {"Metric": "SSIM", "Percentile": "1%", "Acc.": "99.5%", "FAR": "0.0%", "FRR": "1.0%", "Mean": "0.91", "STD": "0.59"},
            {"Metric": "SSIM", "Percentile": "2%", "Acc.": "99.0%", "FAR": "0.0%", "FRR": "2.0%"},
            {"Metric": "SSIM", "Percentile": "3%", "Acc.": "98.5%", "FAR": "0.0%", "FRR": "3.0%"},
        ],
    )


# ---------------------------------------------------------------------------
# filtering detector (F11, F12, T4, T5)
# ---------------------------------------------------------------------------

@experiment(
    "F11/F12",
    title="Filtering detector score distributions",
    aliases=("F11", "F12"),
    order=60,
    kind="figure",
)
def fig11_fig12_filtering_distributions(data: ExperimentData) -> ExperimentResult:
    """Figs. 11–12: MSE/SSIM distributions for the filtering detector."""
    populations: dict[str, list[float]] = {}
    for metric, detector in _filtering_detectors().items():
        populations[f"{metric} benign (calibration)"] = detector.scores(data.calibration.benign)
        populations[f"{metric} attack (calibration)"] = detector.scores(data.calibration.attacks)
    return ExperimentResult(
        experiment_id="F11/F12",
        title="Filtering detector score distributions",
        rows=_distribution_rows(populations),
        paper_reference=[
            {"population": "mse benign", "mean": "1952.32", "std": "1543.27"},
            {"population": "ssim benign", "mean": "0.74", "std": "0.11"},
        ],
        notes=(
            "Reproduced claim: distributions separate, though MSE shows partial "
            "overlap (the paper notes the same), which is why SSIM is the "
            "recommended filtering metric."
        ),
    )


@experiment(
    "T4",
    title="Filtering detection method, white-box setting",
    order=70,
)
def table4_filtering_whitebox(data: ExperimentData) -> ExperimentResult:
    """Table 4: filtering detector, white-box setting."""
    return _whitebox_table(
        "T4",
        "Filtering detection method, white-box setting",
        _filtering_detectors(),
        data,
        paper_reference=[
            {"Metric": "MSE", "Acc.": "98.6%", "Prec.": "97.5%", "Rec.": "99.2%", "FAR": "2.5%", "FRR": "0.8%"},
            {"Metric": "SSIM", "Acc.": "99.3%", "Prec.": "98.7%", "Rec.": "99.7%", "FAR": "1.3%", "FRR": "0.2%"},
        ],
        notes="SSIM outperforms MSE for the filtering method (paper's recommendation).",
    )


@experiment(
    "T5",
    title="Filtering detection method, black-box setting",
    order=80,
)
def table5_filtering_blackbox(data: ExperimentData) -> ExperimentResult:
    """Table 5: filtering detector, black-box percentile thresholds."""
    return _blackbox_table(
        "T5",
        "Filtering detection method, black-box setting",
        _filtering_detectors(),
        data,
        paper_reference=[
            {"Metric": "MSE", "Percentile": "1%", "Acc.": "98.4%", "FAR": "2.2%", "FRR": "1.0%", "Mean": "1952.32", "STD": "1543.27"},
            {"Metric": "SSIM", "Percentile": "1%", "Acc.": "99.2%", "FAR": "0.6%", "FRR": "1.0%", "Mean": "0.74", "STD": "0.11"},
        ],
    )


# ---------------------------------------------------------------------------
# steganalysis detector (F13, T6)
# ---------------------------------------------------------------------------

@experiment(
    "F13",
    title="Centered-spectrum-point counts (white-box corpus)",
    order=90,
    kind="figure",
)
def fig13_csp_distribution(data: ExperimentData) -> ExperimentResult:
    """Fig. 13: distribution of CSP counts for benign vs attack images."""
    detector = SteganalysisDetector()
    benign = detector.scores(data.calibration.benign)
    attack = detector.scores(data.calibration.attacks)
    benign_single = float(np.mean(np.asarray(benign) == 1.0))
    attack_multi = float(np.mean(np.asarray(attack) > 1.0))
    rows = [
        {"population": "benign", "CSP == 1": format_percent(benign_single), "CSP > 1": format_percent(1 - benign_single)},
        {"population": "attack", "CSP == 1": format_percent(1 - attack_multi), "CSP > 1": format_percent(attack_multi)},
    ]
    return ExperimentResult(
        experiment_id="F13",
        title="Centered-spectrum-point counts (white-box corpus)",
        rows=rows,
        paper_reference=[
            {"population": "benign", "CSP == 1": "99.3%"},
            {"population": "attack", "CSP > 1": "98.2%"},
        ],
    )


@experiment(
    "T6",
    title="Steganalysis detection method (fixed threshold, both settings)",
    order=100,
)
def table6_steganalysis(data: ExperimentData) -> ExperimentResult:
    """Table 6: steganalysis detector with the fixed CSP >= 2 threshold."""
    detector = SteganalysisDetector()
    outcome = evaluate_detector(detector, data.evaluation)
    rows = [{"Metric": "CSP", "Threshold": "2", **metrics_row(outcome.counts)}]
    return ExperimentResult(
        experiment_id="T6",
        title="Steganalysis detection method (fixed threshold, both settings)",
        rows=rows,
        paper_reference=[
            {"Metric": "CSP", "Acc.": "98.9%", "Prec.": "99.7%", "Rec.": "98.2%", "FAR": "0.3%", "FRR": "1.7%"},
        ],
        notes=(
            "The same fixed threshold serves white-box and black-box settings — "
            "the paper's key cost-saving observation for this method."
        ),
    )


# ---------------------------------------------------------------------------
# ensemble (T8)
# ---------------------------------------------------------------------------

@experiment(
    "T8",
    title="Decamouflage ensemble (majority vote of three methods)",
    order=120,
)
def table8_ensemble(data: ExperimentData, *, percentile: float = 1.0) -> ExperimentResult:
    """Table 8: Decamouflage as a majority-vote ensemble, WB and BB."""
    rows = []
    whitebox = build_default_ensemble(data.model_input_shape, algorithm=data.algorithm)
    with stage("calibrate"):
        cached_ensemble_calibration(
            whitebox,
            {"strategy": "midpoint"},
            lambda: whitebox.calibrate(data.calibration.benign, data.calibration.attacks),
        )
    rows.append({"Setting": "White-box ensemble", **metrics_row(evaluate_ensemble(whitebox, data.evaluation))})
    blackbox = build_default_ensemble(data.model_input_shape, algorithm=data.algorithm)
    with stage("calibrate"):
        cached_ensemble_calibration(
            blackbox,
            {"strategy": "percentile", "percentile": percentile},
            lambda: blackbox.calibrate(data.calibration.benign, percentile=percentile),
        )
    rows.append({"Setting": "Black-box ensemble", **metrics_row(evaluate_ensemble(blackbox, data.evaluation))})
    return ExperimentResult(
        experiment_id="T8",
        title="Decamouflage ensemble (majority vote of three methods)",
        rows=rows,
        paper_reference=[
            {"Setting": "White-box ensemble", "Acc.": "99.9%", "Prec.": "99.8%", "Rec.": "100.0%", "FAR": "0.2%", "FRR": "0.0%"},
            {"Setting": "Black-box ensemble", "Acc.": "99.8%", "Prec.": "99.8%", "Rec.": "99.9%", "FAR": "0.2%", "FRR": "0.1%"},
        ],
    )


# ---------------------------------------------------------------------------
# T9 — missed attacks lose their purpose
# ---------------------------------------------------------------------------

@experiment(
    "T9",
    title="Missed attack images lose their attack purpose",
    order=130,
)
def table9_missed_attacks(data: ExperimentData, *, seed: int | None = None) -> ExperimentResult:
    """Table 9: attack images that evade detection no longer fool a model.

    The paper submits its false-accepted attack images to Azure/Baidu/
    Tencent and finds they are not classified as the hidden target. Our
    stand-in: a CNN trained on the synthetic class task; we check whether
    the downscaled missed-attack image is classified as its target's class.
    Because this needs labelled targets, the experiment crafts its own
    small attack set from class images instead of reusing *data*'s corpora.
    """
    from repro.attacks.strong import craft_attack_image
    from repro.datasets.synthetic import generate_class_image
    from repro.errors import AttackError
    from repro.ml import build_small_cnn, evaluate_accuracy, make_classification_set, normalize_batch, train
    from repro.imaging.scaling import resize

    if seed is None:
        seed = data.seed

    h_in, w_in = data.model_input_shape
    n_classes = 10
    train_set = make_classification_set(40, image_shape=(h_in, w_in), n_classes=n_classes, seed=seed)
    model = build_small_cnn((h_in, w_in, 3), n_classes, seed=seed)
    train(model, train_set, epochs=6, seed=seed)
    test_set = make_classification_set(10, image_shape=(h_in, w_in), n_classes=n_classes, seed=seed + 1)
    clean_accuracy = evaluate_accuracy(model, test_set)

    ensemble = build_default_ensemble(data.model_input_shape, algorithm=data.algorithm)
    with stage("calibrate"):
        cached_ensemble_calibration(
            ensemble,
            {"strategy": "midpoint"},
            lambda: ensemble.calibrate(data.calibration.benign, data.calibration.attacks),
        )

    rng = np.random.default_rng(seed)
    n_attacks = min(30, data.n_calibration)
    missed, caught = 0, 0
    missed_still_target, missed_variants = 0, 0
    strengths = (1.0, 0.7, 0.5, 0.35)  # weaker variants are likelier to slip through
    for index in range(n_attacks):
        target_class = int(rng.integers(0, n_classes))
        target = generate_class_image((h_in, w_in), rng, target_class, n_classes=n_classes)
        cover = data.calibration.benign[index]
        try:
            result = craft_attack_image(cover, target, algorithm=data.algorithm)
        except AttackError:
            continue
        for strength in strengths:
            attack_image = result.original + strength * (result.attack_image - result.original)
            if ensemble.is_attack(attack_image):
                caught += 1
                continue
            missed += 1
            downscaled = resize(attack_image, data.model_input_shape, data.algorithm)
            predicted = int(model.predict(normalize_batch(downscaled[None, ...]))[0])
            missed_variants += 1
            if predicted == target_class:
                missed_still_target += 1

    still = missed_still_target / missed_variants if missed_variants else 0.0
    rows = [
        {
            "clean model acc": format_percent(clean_accuracy),
            "attack variants": len(strengths) * n_attacks,
            "caught": caught,
            "missed": missed,
            "missed still hit target": f"{missed_still_target}/{missed_variants}" if missed_variants else "0/0",
            "target-hit rate among missed": format_percent(still),
        }
    ]
    return ExperimentResult(
        experiment_id="T9",
        title="Missed attack images lose their attack purpose",
        rows=rows,
        paper_reference=[
            {"claim": "attack images that pass Decamouflage are no longer recognized as the target by Azure/Baidu/Tencent"},
        ],
        notes=(
            "Evasion requires weakening the perturbation, which also destroys "
            "the hidden target — so missed attacks rarely classify as the "
            "attacker's intended class."
        ),
    )


# ---------------------------------------------------------------------------
# appendix + ablations
# ---------------------------------------------------------------------------

@experiment(
    "AF15/AF16",
    title="PSNR as a detection metric (appendix negative result)",
    aliases=("AF15", "AF16"),
    order=140,
    kind="figure",
)
def appendix_psnr(data: ExperimentData) -> ExperimentResult:
    """Appendix Figs. 15–16: PSNR does not separate benign from attack."""
    rows = []
    references = {
        "scaling": ImageAnalysis.round_trip_key(data.model_input_shape, data.algorithm),
        "filtering": ImageAnalysis.filtered_key("minimum", 2),
    }

    def psnr_by_method(images) -> dict[str, list[float]]:
        # One shared context per image: both methods' reference images come
        # out of the same validated float view.
        scores: dict[str, list[float]] = {method: [] for method in references}
        for img in images:
            analysis = ImageAnalysis(img)
            for method, key in references.items():
                scores[method].append(psnr(img, analysis.get(key)))
        return scores

    benign_by_method = psnr_by_method(data.calibration.benign)
    attack_by_method = psnr_by_method(data.calibration.attacks)
    for method in references:
        benign = benign_by_method[method]
        attack = attack_by_method[method]
        separation = auc(benign, attack)
        overlap_lo = max(min(benign), min(attack))
        overlap_hi = min(max(benign), max(attack))
        rows.append(
            {
                "method": method,
                "benign mean dB": format_number(float(np.mean(benign))),
                "attack mean dB": format_number(float(np.mean(attack))),
                "AUC": f"{separation:.3f}",
                "overlap band dB": f"[{overlap_lo:.1f}, {overlap_hi:.1f}]",
            }
        )
    return ExperimentResult(
        experiment_id="AF15/AF16",
        title="PSNR as a detection metric (appendix negative result)",
        rows=rows,
        paper_reference=[
            {"claim": "PSNR histograms of benign and attack images highly overlap for both methods"},
        ],
        notes=(
            "PSNR is a log transform of MSE, so it *does* order populations; the "
            "paper's observation is that the histograms crowd together, making a "
            "robust fixed threshold impractical — visible here as a much narrower "
            "gap (in dB) than the raw-MSE separation."
        ),
    )


@experiment(
    "AB1",
    title="Color histogram vs Decamouflage metrics (adaptive attacker)",
    order=150,
    kind="ablation",
)
def ablation_histogram_metric(data: ExperimentData, *, n_images: int = 15) -> ExperimentResult:
    """AB1: Xiao et al.'s color-histogram defense fails (paper Section 3.1).

    Xiao et al. suggested comparing the color histogram of the input with
    its downscaled output. That check only sees *palette* changes — so an
    adaptive attacker (Quiring et al.) simply histogram-matches the hidden
    target to the cover before embedding it. We measure the histogram
    metric and Decamouflage's MSE metric against both the naive and the
    palette-matched attack: the histogram AUC collapses, MSE stays perfect.
    """
    from repro.attacks.adaptive import palette_matched_attack
    from repro.attacks.strong import craft_attack_image
    from repro.errors import AttackError
    from repro.imaging.scaling import resize

    mse_detector = ScalingDetector(data.model_input_shape, algorithm=data.algorithm, metric="mse")
    round_trip_key = ImageAnalysis.round_trip_key(data.model_input_shape, data.algorithm)

    n = min(n_images, data.n_calibration)
    # One context per image: the histogram metric and the MSE detector both
    # read the same memoized round trip.
    benign_hist: list[float] = []
    benign_mse: list[float] = []
    for img in data.calibration.benign[:n]:
        analysis = ImageAnalysis(img)
        benign_hist.append(histogram_intersection(img, analysis.get(round_trip_key)))
        benign_mse.append(mse_detector.score_from(analysis))

    def score_attacks(match_palette: bool) -> tuple[list[float], list[float]]:
        hist_scores: list[float] = []
        mse_scores: list[float] = []
        for index in range(n):
            original = data.calibration.benign[index]
            target = resize(
                data.calibration.attacks[(index + 1) % n],
                data.model_input_shape,
                data.algorithm,
            )
            craft = palette_matched_attack if match_palette else craft_attack_image
            try:
                attack = craft(original, target, algorithm=data.algorithm).attack_image
            except AttackError:
                continue
            analysis = ImageAnalysis(attack)
            hist_scores.append(histogram_intersection(attack, analysis.get(round_trip_key)))
            mse_scores.append(mse_detector.score_from(analysis))
        return hist_scores, mse_scores

    naive_hist, naive_mse = score_attacks(match_palette=False)
    matched_hist, matched_mse = score_attacks(match_palette=True)

    rows = [
        {
            "attack": "naive (different palette)",
            "histogram AUC": f"{auc(benign_hist, naive_hist):.3f}",
            "MSE AUC": f"{auc(benign_mse, naive_mse):.3f}",
        },
        {
            "attack": "palette-matched (adaptive)",
            "histogram AUC": f"{auc(benign_hist, matched_hist):.3f}",
            "MSE AUC": f"{auc(benign_mse, matched_mse):.3f}",
        },
    ]
    return ExperimentResult(
        experiment_id="AB1",
        title="Color histogram vs Decamouflage metrics (adaptive attacker)",
        rows=rows,
        paper_reference=[
            {"claim": "the color histogram is not a valid metric for detecting image-scaling attacks (Quiring et al. bypass Xiao's histogram mitigation)"},
        ],
        notes=(
            "A histogram check only notices palette changes, so matching the "
            "hidden target's palette to the cover blinds it; pixel-position "
            "metrics (MSE/SSIM) are unaffected."
        ),
    )


@experiment(
    "AB2",
    title="Adaptive attacks against the ensemble",
    order=160,
    kind="ablation",
)
def ablation_adaptive_attacks(data: ExperimentData, *, n_images: int = 12) -> ExperimentResult:
    """AB2: adaptive attacks vs individual detectors vs the ensemble.

    For each adaptive variant, measures (a) per-detector evasion, (b)
    ensemble evasion, and (c) whether the attack still delivers its hidden
    target (MSE between downscaled attack and target). Reproduces the
    Discussion-section argument: evading all three methods at once destroys
    the attack.
    """
    from repro.attacks.adaptive import (
        detector_aware_attack,
        partial_attack,
        relaxed_attack,
        smoothed_attack,
    )
    from repro.imaging.metrics import mse as mse_metric
    from repro.imaging.scaling import resize

    ensemble = build_default_ensemble(data.model_input_shape, algorithm=data.algorithm)
    with stage("calibrate"):
        cached_ensemble_calibration(
            ensemble,
            {"strategy": "midpoint"},
            lambda: ensemble.calibrate(data.calibration.benign, data.calibration.attacks),
        )

    variants = {
        "strong (baseline)": lambda o, t: partial_attack(o, t, algorithm=data.algorithm, strength=1.0),
        "partial 0.5": lambda o, t: partial_attack(o, t, algorithm=data.algorithm, strength=0.5),
        "smoothed σ=0.8": lambda o, t: smoothed_attack(o, t, algorithm=data.algorithm, sigma=0.8),
        "relaxed ε=32": lambda o, t: relaxed_attack(o, t, algorithm=data.algorithm, epsilon=32.0),
        "detector-aware w=10": lambda o, t: detector_aware_attack(
            o, t, algorithm=data.algorithm, evasion_weight=10.0
        ),
    }
    rows = []
    n = min(n_images, data.n_calibration)
    for name, attack_fn in variants.items():
        evaded = 0
        votes = {d.method: 0 for d in ensemble.detectors}
        fidelity = []
        for index in range(n):
            original = data.calibration.benign[index]
            target = resize(
                data.calibration.attacks[(index + 1) % n],
                data.model_input_shape,
                data.algorithm,
            )
            result = attack_fn(original, target)
            decision = ensemble.detect(result.attack_image)
            if not decision.is_attack:
                evaded += 1
            for det in decision.detections:
                if det.is_attack:
                    votes[det.method] += 1
            downscaled = resize(result.attack_image, data.model_input_shape, data.algorithm)
            fidelity.append(mse_metric(downscaled, result.target))
        rows.append(
            {
                "variant": name,
                "ensemble evasion": f"{evaded}/{n}",
                "caught by scaling": f"{votes['scaling']}/{n}",
                "caught by filtering": f"{votes['filtering']}/{n}",
                "caught by steganalysis": f"{votes['steganalysis']}/{n}",
                "payload MSE (lower=working attack)": format_number(float(np.mean(fidelity))),
            }
        )
    return ExperimentResult(
        experiment_id="AB2",
        title="Adaptive attacks against the ensemble",
        rows=rows,
        paper_reference=[
            {"claim": "ensemble voting hardens adaptive attacks that defeat a single method"},
        ],
    )


@experiment(
    "AB3",
    title="Prevention baselines vs detection",
    order=170,
    kind="ablation",
)
def ablation_prevention_defenses(data: ExperimentData, *, n_images: int = 20) -> ExperimentResult:
    """AB3: prevention baselines' costs vs detection (paper Section 1).

    Measures, on the calibration corpus: how well robust scaling destroys
    the payload, what it costs benign inputs (drift vs the deployed
    scaler), and the quality loss of reconstruction — the two downsides the
    Decamouflage paper cites to motivate a detection-only defense.
    """
    from repro.defenses import attack_residue, benign_drift, reconstruction_quality_loss
    from repro.imaging.scaling import resize

    n = min(n_images, data.n_calibration)
    residues, drifts, losses = [], [], []
    for index in range(n):
        attack_image = data.calibration.attacks[index]
        benign_image = data.calibration.benign[index]
        target = resize(attack_image, data.model_input_shape, data.algorithm)
        residues.append(attack_residue(attack_image, target, data.model_input_shape))
        drifts.append(
            benign_drift(benign_image, data.model_input_shape, deployed_algorithm=data.algorithm)
        )
        losses.append(
            reconstruction_quality_loss(benign_image, data.model_input_shape, algorithm=data.algorithm)
        )
    rows = [
        {"defense": "robust scaling (area)", "payload destruction MSE": format_number(float(np.mean(residues))), "benign cost": f"drift MSE {format_number(float(np.mean(drifts)))}"},
        {"defense": "reconstruction (median)", "payload destruction MSE": "n/a (prevents injection)", "benign cost": f"quality loss MSE {format_number(float(np.mean(losses)))}"},
        {"defense": "Decamouflage (detection)", "payload destruction MSE": "n/a (rejects image)", "benign cost": "none (no pixel modified)"},
    ]
    return ExperimentResult(
        experiment_id="AB3",
        title="Prevention baselines vs detection",
        rows=rows,
        paper_reference=[
            {"claim": "prevention degrades input quality / changes scaler behaviour; detection leaves benign inputs untouched"},
        ],
    )


@experiment(
    "AB4",
    title="Robustness of the ensemble to benign post-processing",
    order=180,
    kind="ablation",
)
def ablation_benign_transforms(data: ExperimentData, *, n_images: int = 15) -> ExperimentResult:
    """AB4: robustness to benign post-processing.

    Applies common benign transforms (brightness, contrast, noise,
    re-quantization, flips) to *benign* and *attack* images and measures
    how the calibrated ensemble's verdicts change. Deployment question:
    do ordinary pipeline steps cause false alarms, and do attacks stay
    detectable after them?
    """
    from repro.imaging import transforms as tf

    ensemble = build_default_ensemble(data.model_input_shape, algorithm=data.algorithm)
    with stage("calibrate"):
        cached_ensemble_calibration(
            ensemble,
            {"strategy": "midpoint"},
            lambda: ensemble.calibrate(data.calibration.benign, data.calibration.attacks),
        )

    operations = {
        "identity": lambda img: np.asarray(img, dtype=np.float64),
        "brightness +20": lambda img: tf.adjust_brightness(img, 20.0),
        "contrast x1.2": lambda img: tf.adjust_contrast(img, 1.2),
        "noise sigma=2": lambda img: tf.add_gaussian_noise(img, 2.0, seed=5),
        "quantize 64": lambda img: tf.quantize(img, 64),
        "flip horizontal": tf.flip_horizontal,
    }
    n = min(n_images, data.n_evaluation)
    rows = []
    for name, operation in operations.items():
        benign_flags = [
            ensemble.is_attack(operation(img)) for img in data.evaluation.benign[:n]
        ]
        attack_flags = [
            ensemble.is_attack(operation(img)) for img in data.evaluation.attacks[:n]
        ]
        counts = evaluate_decisions(benign_flags, attack_flags)
        rows.append(
            {
                "transform": name,
                "benign false alarms": f"{sum(benign_flags)}/{n}",
                "attacks still flagged": f"{sum(attack_flags)}/{n}",
                "accuracy": format_percent(counts.accuracy),
            }
        )
    return ExperimentResult(
        experiment_id="AB4",
        title="Robustness of the ensemble to benign post-processing",
        rows=rows,
        paper_reference=[
            {"claim": "(deployment-hardening ablation beyond the paper's tables)"},
        ],
        notes=(
            "Photometric transforms barely move the scores; flips relocate "
            "but do not remove the perturbation grid, so detection holds."
        ),
    )


@experiment(
    "AB6",
    title="JPEG re-encoding as a candidate defense",
    order=200,
    kind="ablation",
)
def ablation_jpeg_reencoding(data: ExperimentData, *, n_images: int = 12) -> ExperimentResult:
    """AB6: is "just recompress uploads" a defense? (it is not a reliable one)

    For each JPEG quality: does the hidden payload survive re-encoding
    (MSE between the downscaled recompressed attack and the target,
    relative to a benign baseline), and does the ensemble still flag the
    recompressed images? High-quality JPEG leaves the attack intact;
    aggressive compression degrades benign inputs too — while detection
    keeps working across the whole range.
    """
    from repro.imaging.jpeg import jpeg_roundtrip
    from repro.imaging.metrics import mse as mse_metric
    from repro.imaging.scaling import resize

    ensemble = build_default_ensemble(data.model_input_shape, algorithm=data.algorithm)
    with stage("calibrate"):
        cached_ensemble_calibration(
            ensemble,
            {"strategy": "midpoint"},
            lambda: ensemble.calibrate(data.calibration.benign, data.calibration.attacks),
        )

    n = min(n_images, data.n_evaluation)
    benign_ref = float(
        np.mean(
            [
                mse_metric(
                    resize(data.evaluation.benign[i], data.model_input_shape, data.algorithm),
                    resize(data.evaluation.attacks[i], data.model_input_shape, data.algorithm),
                )
                for i in range(n)
            ]
        )
    )
    rows = []
    for quality, subsample in ((95, False), (95, True), (85, True), (60, True)):
        payload_errors = []
        flagged = 0
        benign_quality_loss = []
        for index in range(n):
            attack = data.evaluation.attacks[index]
            target = resize(attack, data.model_input_shape, data.algorithm)
            recompressed = jpeg_roundtrip(attack, quality, subsample_chroma=subsample)
            payload_errors.append(
                mse_metric(resize(recompressed, data.model_input_shape, data.algorithm), target)
            )
            flagged += ensemble.is_attack(recompressed)
            benign = data.evaluation.benign[index]
            benign_quality_loss.append(
                mse_metric(benign, jpeg_roundtrip(benign, quality, subsample_chroma=subsample))
            )
        rows.append(
            {
                "quality": f"q{quality}" + (" 4:2:0" if subsample else " 4:4:4"),
                "payload survival (MSE vs target, lower=intact)": format_number(float(np.mean(payload_errors))),
                "unrelated-image baseline": format_number(benign_ref),
                "still flagged": f"{flagged}/{n}",
                "benign quality cost (MSE)": format_number(float(np.mean(benign_quality_loss))),
            }
        )
    return ExperimentResult(
        experiment_id="AB6",
        title="JPEG re-encoding as a candidate defense",
        rows=rows,
        paper_reference=[
            {"claim": "(beyond the paper: quantifies why lossy re-encoding is not a substitute for detection)"},
        ],
        notes=(
            "Payload survival well below the unrelated-image baseline means "
            "the model still sees the attacker's target after re-encoding; "
            "detection keeps flagging the images at every quality."
        ),
    )


@experiment(
    "AB5",
    title="Attack surface and detectability vs ratio and algorithm",
    order=190,
    kind="ablation",
)
def ablation_surface_sweep(data: ExperimentData, *, n_images: int = 8) -> ExperimentResult:
    """AB5: attack surface and detectability across ratios and algorithms.

    For each (downscale ratio, algorithm) pair: the structural exposure
    (influential-pixel fraction from the coefficient matrices), attack
    feasibility (perturbation MSE), and the scaling detector's separation
    (AUC). Ties the paper's background analysis (Table 1, Section 2) to
    measured attack/defense outcomes in one table.
    """
    from repro.attacks.analysis import analyze_surface
    from repro.attacks.strong import craft_attack_image
    from repro.errors import AttackError
    from repro.imaging.metrics import mse as mse_metric
    from repro.imaging.scaling import downscale_then_upscale, resize

    h, w = data.source_shape
    n = min(n_images, data.n_calibration)
    rows = []
    for ratio in (2, 4, 8):
        target_shape = (h // ratio, w // ratio)
        for algorithm in ("nearest", "bilinear", "bicubic", "area"):
            report = analyze_surface(data.source_shape, target_shape, algorithm)
            perturbations = []
            benign_scores = []
            attack_scores = []
            for index in range(n):
                original = data.calibration.benign[index]
                target = resize(
                    data.calibration.attacks[(index + 1) % n], target_shape, algorithm
                )
                benign_scores.append(
                    mse_metric(
                        original, downscale_then_upscale(original, target_shape, algorithm)
                    )
                )
                try:
                    attack = craft_attack_image(original, target, algorithm=algorithm)
                except AttackError:
                    continue
                perturbations.append(
                    mse_metric(attack.attack_image, np.asarray(original, dtype=float))
                )
                attack_scores.append(
                    mse_metric(
                        attack.attack_image,
                        downscale_then_upscale(attack.attack_image, target_shape, algorithm),
                    )
                )
            feasible = len(perturbations)
            rows.append(
                {
                    "ratio": f"{ratio}x",
                    "algorithm": algorithm,
                    "influential pixels": format_percent(report.influential_fraction),
                    "attacks feasible": f"{feasible}/{n}",
                    "perturbation MSE": format_number(float(np.mean(perturbations))) if feasible else "-",
                    "detector AUC": f"{auc(benign_scores, attack_scores):.2f}" if feasible else "-",
                }
            )
    return ExperimentResult(
        experiment_id="AB5",
        title="Attack surface and detectability vs ratio and algorithm",
        rows=rows,
        paper_reference=[
            {"claim": "sparser scaling (higher ratio, narrower kernel) = stealthier attack; area scaling closes the surface (Section 2 / Quiring et al.)"},
        ],
        notes=(
            "Higher ratios shrink the perturbation (stealthier attack) while "
            "the scaling detector's AUC stays at 1.0; area averaging reads "
            "every pixel, so the optimizer must distort the whole image — "
            "the attack stops being an attack."
        ),
    )
