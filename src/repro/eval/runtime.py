"""Run-time overhead measurement (paper Table 7).

Times each detector's per-image decision path — score + threshold compare —
exactly as an online deployment would run it, and reports mean and standard
deviation in milliseconds. The paper's i5-7500 numbers are attached for
comparison; absolute times differ by machine, but the ordering
(CSP ≪ MSE ≪ SSIM) and the "milliseconds, deployable online" scale are the
reproduced claims.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.core.detector import Detector
from repro.core.filtering_detector import FilteringDetector
from repro.core.result import Direction, ThresholdRule
from repro.core.scaling_detector import ScalingDetector
from repro.core.steganalysis_detector import SteganalysisDetector
from repro.eval.data import ExperimentData
from repro.eval.experiments import ExperimentResult
from repro.eval.registry import experiment
from repro.eval.tables import format_number

__all__ = [
    "PAPER_RUNTIMES",
    "time_detector",
    "time_detector_batch",
    "table7_runtime",
    "table7_from_data",
    "table7_batch_throughput",
]

#: Paper Table 7 (milliseconds on an Intel i5-7500).
PAPER_RUNTIMES = [
    {"Method": "Scaling", "Metric": "MSE", "Run-time (ms)": "11", "Std (ms)": "5"},
    {"Method": "Scaling", "Metric": "SSIM", "Run-time (ms)": "137", "Std (ms)": "4"},
    {"Method": "Filtering", "Metric": "MSE", "Run-time (ms)": "11", "Std (ms)": "3"},
    {"Method": "Filtering", "Metric": "SSIM", "Run-time (ms)": "174", "Std (ms)": "6"},
    {"Method": "Steganalysis", "Metric": "CSP", "Run-time (ms)": "3", "Std (ms)": "1"},
]


def time_detector(
    detector: Detector,
    images: Sequence[np.ndarray],
    *,
    repeats: int = 1,
) -> tuple[float, float]:
    """Per-image decision latency: (mean_ms, std_ms) over all images."""
    timings = []
    for _ in range(repeats):
        for image in images:
            start = time.perf_counter()
            detector.detect(image)
            timings.append((time.perf_counter() - start) * 1000.0)
    array = np.asarray(timings)
    return float(array.mean()), float(array.std())


def time_detector_batch(
    detector: Detector,
    images: Sequence[np.ndarray],
    *,
    repeats: int = 1,
) -> float:
    """Per-image latency of the batch path: best-of-*repeats* total wall
    time for one ``detect_batch`` over the whole pool, divided by the pool
    size. Min-of-repeats timing resists scheduler noise."""
    images = list(images)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        detector.detect_batch(images)
        best = min(best, time.perf_counter() - start)
    return best * 1000.0 / len(images)


def table7_batch_throughput(
    images: Sequence[np.ndarray],
    *,
    model_input_shape: tuple[int, int] = (32, 32),
    algorithm: str = "bilinear",
    repeats: int = 3,
) -> ExperimentResult:
    """Batch vs serial decision throughput per detector configuration.

    Companion to :func:`table7_runtime` (no paper counterpart): for each
    detector the serial column times per-image ``detect`` calls, the batch
    column times one ``detect_batch`` over the same pool. Both use
    min-of-*repeats* wall time. The scaling detector's fused batch path is
    where the speedup concentrates; loop-fallback detectors stay near 1x.
    """
    images = list(images)
    placeholder = ThresholdRule(value=0.0, direction=Direction.GREATER)
    ssim_placeholder = ThresholdRule(value=0.0, direction=Direction.LESS)
    detectors = [
        ("Scaling", "MSE", ScalingDetector(model_input_shape, algorithm=algorithm, metric="mse", threshold=placeholder)),
        ("Scaling", "SSIM", ScalingDetector(model_input_shape, algorithm=algorithm, metric="ssim", threshold=ssim_placeholder)),
        ("Filtering", "MSE", FilteringDetector(metric="mse", threshold=placeholder)),
        ("Filtering", "SSIM", FilteringDetector(metric="ssim", threshold=ssim_placeholder)),
        ("Steganalysis", "CSP", SteganalysisDetector()),
    ]
    rows = []
    for method, metric, detector in detectors:
        serial_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for image in images:
                detector.detect(image)
            serial_best = min(serial_best, time.perf_counter() - start)
        serial_ms = serial_best * 1000.0 / len(images)
        batch_ms = time_detector_batch(detector, images, repeats=repeats)
        rows.append(
            {
                "Method": method,
                "Metric": metric,
                "Serial (ms/img)": format_number(serial_ms),
                "Batch (ms/img)": format_number(batch_ms),
                "Serial (img/s)": format_number(1000.0 / serial_ms),
                "Batch (img/s)": format_number(1000.0 / batch_ms),
                "Speedup": format_number(serial_ms / batch_ms),
            }
        )
    return ExperimentResult(
        experiment_id="T7B",
        title="Batch vs serial detection throughput",
        rows=rows,
        notes=(
            "Min-of-repeats wall time over one pool of "
            f"{len(images)} images; batch column routes through "
            "detect_batch with a warm scaling-operator cache."
        ),
    )


@experiment(
    "T7",
    title="Run-time overhead per detection method",
    order=110,
)
def table7_from_data(data: ExperimentData) -> ExperimentResult:
    """Table 7 with the standard corpus: times 30 evaluation-benign images.

    The registry entry point; :func:`table7_runtime` stays available for
    timing arbitrary image pools (the benchmarks use it directly).
    """
    return table7_runtime(
        data.evaluation.benign[: min(30, len(data.evaluation.benign))],
        model_input_shape=data.model_input_shape,
        algorithm=data.algorithm,
    )


def table7_runtime(
    images: Sequence[np.ndarray],
    *,
    model_input_shape: tuple[int, int] = (32, 32),
    algorithm: str = "bilinear",
    repeats: int = 1,
) -> ExperimentResult:
    """Table 7: per-method run-time overhead on this machine."""
    placeholder = ThresholdRule(value=0.0, direction=Direction.GREATER)
    ssim_placeholder = ThresholdRule(value=0.0, direction=Direction.LESS)
    detectors = [
        ("Scaling", "MSE", ScalingDetector(model_input_shape, algorithm=algorithm, metric="mse", threshold=placeholder)),
        ("Scaling", "SSIM", ScalingDetector(model_input_shape, algorithm=algorithm, metric="ssim", threshold=ssim_placeholder)),
        ("Filtering", "MSE", FilteringDetector(metric="mse", threshold=placeholder)),
        ("Filtering", "SSIM", FilteringDetector(metric="ssim", threshold=ssim_placeholder)),
        ("Steganalysis", "CSP", SteganalysisDetector()),
    ]
    rows = []
    for method, metric, detector in detectors:
        mean_ms, std_ms = time_detector(detector, images, repeats=repeats)
        rows.append(
            {
                "Method": method,
                "Metric": metric,
                "Run-time (ms)": format_number(mean_ms),
                "Std (ms)": format_number(std_ms),
            }
        )
    return ExperimentResult(
        experiment_id="T7",
        title="Run-time overhead per detection method",
        rows=rows,
        paper_reference=PAPER_RUNTIMES,
        notes=(
            "Absolute numbers are machine-dependent; the reproduced claims are "
            "the ordering (CSP fastest, SSIM slowest) and millisecond scale."
        ),
    )
