"""Experiment harness: registry, mediator, per-table runners, reporting."""

from repro.eval.cache import CACHE_VERSION, ExperimentCache, cache_key
from repro.eval.data import (
    DEFAULT_MODEL_INPUT,
    DEFAULT_SOURCE_SHAPE,
    DataConfig,
    ExperimentData,
    build_experiment_data,
    prepare_data,
)
from repro.eval.experiments import ExperimentResult
from repro.eval.mediator import ExperimentCell, ExperimentMediator
from repro.eval.registry import (
    ExperimentSpec,
    experiment,
    get_spec,
    registered_experiments,
    resolve_experiment_id,
)
from repro.eval.report import EXPERIMENT_RUNNERS, render_report, run_all_experiments
from repro.eval.runtime import table7_runtime, time_detector
from repro.eval.tables import format_number, format_percent, metrics_row, render_table

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_MODEL_INPUT",
    "DEFAULT_SOURCE_SHAPE",
    "DataConfig",
    "EXPERIMENT_RUNNERS",
    "ExperimentCache",
    "ExperimentCell",
    "ExperimentData",
    "ExperimentMediator",
    "ExperimentResult",
    "ExperimentSpec",
    "build_experiment_data",
    "cache_key",
    "experiment",
    "format_number",
    "format_percent",
    "get_spec",
    "metrics_row",
    "prepare_data",
    "registered_experiments",
    "render_report",
    "render_table",
    "resolve_experiment_id",
    "run_all_experiments",
    "table7_runtime",
    "time_detector",
]
