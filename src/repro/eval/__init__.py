"""Experiment harness: per-table/figure runners, timing, and reporting."""

from repro.eval.data import (
    DEFAULT_MODEL_INPUT,
    DEFAULT_SOURCE_SHAPE,
    ExperimentData,
    prepare_data,
)
from repro.eval.experiments import ExperimentResult
from repro.eval.report import EXPERIMENT_RUNNERS, render_report, run_all_experiments
from repro.eval.runtime import table7_runtime, time_detector
from repro.eval.tables import format_number, format_percent, metrics_row, render_table

__all__ = [
    "DEFAULT_MODEL_INPUT",
    "DEFAULT_SOURCE_SHAPE",
    "EXPERIMENT_RUNNERS",
    "ExperimentData",
    "ExperimentResult",
    "format_number",
    "format_percent",
    "metrics_row",
    "prepare_data",
    "render_report",
    "render_table",
    "run_all_experiments",
    "table7_runtime",
    "time_detector",
]
