"""Plain-text table rendering for experiment output.

Benchmarks print the same rows the paper's tables report; this module turns
lists of dict rows into aligned text tables and formats the five detection
metrics consistently (percentages with one decimal, like the paper).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_percent", "format_number", "render_table", "metrics_row"]


def format_percent(value: float) -> str:
    """0.999 → '99.9%' (the paper's formatting)."""
    return f"{value * 100:.1f}%"


def format_number(value: float) -> str:
    """Compact numeric formatting for thresholds and statistics."""
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.1f}"
    return f"{value:.3g}"


def metrics_row(counts) -> dict[str, str]:
    """Format a ConfusionCounts into the paper's five columns."""
    row = counts.as_row()
    return {
        "Acc.": format_percent(row["accuracy"]),
        "Prec.": format_percent(row["precision"]),
        "Rec.": format_percent(row["recall"]),
        "FAR": format_percent(row["far"]),
        "FRR": format_percent(row["frr"]),
    }


def render_table(
    rows: Sequence[Mapping[str, object]],
    *,
    title: str | None = None,
    columns: Sequence[str] | None = None,
) -> str:
    """Render dict rows as an aligned text table.

    Column order follows *columns* when given, otherwise first-seen order
    across all rows. Missing cells render empty.
    """
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(str(key), None)
        columns = list(seen)
    header = [str(c) for c in columns]
    body = [[str(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(rule)
    for row in body:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
