"""Shared experiment data: corpora + crafted attack sets, built once.

Every table/figure experiment needs the same expensive inputs — a
calibration corpus with matching attack images (paper: NeurIPS-2017) and
an unseen evaluation corpus with its own attack images (paper: Caltech-256).

:class:`DataConfig` pins down every parameter that determines those
inputs, including the RNG ``seed``, so its :meth:`~DataConfig.fingerprint`
is an honest content address: two configs with equal fingerprints produce
bit-identical corpora and attack images. :func:`build_experiment_data`
builds one :class:`ExperimentData` from a config — loading each attack
set from an :class:`~repro.eval.cache.ExperimentCache` when one is given —
and :func:`prepare_data` keeps the original convenience signature with an
in-process ``lru_cache``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.attacks.base import AttackConfig
from repro.core.pipeline import AttackSet, build_attack_set
from repro.datasets.corpus import caltech_like_corpus, neurips_like_corpus
from repro.eval.cache import ExperimentCache, cache_key
from repro.eval.stages import stage

__all__ = [
    "DataConfig",
    "ExperimentData",
    "build_experiment_data",
    "prepare_data",
    "DEFAULT_SOURCE_SHAPE",
    "DEFAULT_MODEL_INPUT",
]

#: Source ("camera") image size used across experiments. The paper works
#: with NeurIPS-2017 images (299²) and Caltech-256 photos; 256² keeps the
#: same ~8x downscale ratio against the 32² model input at laptop cost.
DEFAULT_SOURCE_SHAPE = (256, 256)
#: Model input size (LeNet-class models in paper Table 1 use 32x32).
DEFAULT_MODEL_INPUT = (32, 32)


@dataclass(frozen=True)
class DataConfig:
    """Everything that determines the experiment corpora and attack sets."""

    n_calibration: int = 100
    n_evaluation: int = 100
    source_shape: tuple[int, int] = DEFAULT_SOURCE_SHAPE
    model_input_shape: tuple[int, int] = DEFAULT_MODEL_INPUT
    algorithm: str = "bilinear"
    epsilon: float = 4.0
    seed: int = 0

    def as_dict(self) -> dict:
        """JSON-ready mapping (tuples become lists)."""
        return {
            "n_calibration": self.n_calibration,
            "n_evaluation": self.n_evaluation,
            "source_shape": list(self.source_shape),
            "model_input_shape": list(self.model_input_shape),
            "algorithm": self.algorithm,
            "epsilon": self.epsilon,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DataConfig":
        return cls(
            n_calibration=int(payload["n_calibration"]),
            n_evaluation=int(payload["n_evaluation"]),
            source_shape=tuple(payload["source_shape"]),
            model_input_shape=tuple(payload["model_input_shape"]),
            algorithm=str(payload["algorithm"]),
            epsilon=float(payload["epsilon"]),
            seed=int(payload["seed"]),
        )

    def replace(self, **overrides) -> "DataConfig":
        """A copy with *overrides* applied (sweep axes use this)."""
        merged = {**self.as_dict(), **overrides}
        return DataConfig.from_dict(merged)

    def fingerprint(self) -> str:
        """Stable short hash of the full config — the cache-key component."""
        return cache_key("data-config", self.as_dict())[:16]

    def role_config(self, role: str) -> dict:
        """The sub-config that generates one attack set (cache key input)."""
        n = self.n_calibration if role == "calibration" else self.n_evaluation
        return {
            "role": role,
            "n": n,
            "source_shape": list(self.source_shape),
            "model_input_shape": list(self.model_input_shape),
            "algorithm": self.algorithm,
            "epsilon": self.epsilon,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class ExperimentData:
    """Calibration and evaluation attack sets plus their parameters."""

    calibration: AttackSet
    evaluation: AttackSet
    source_shape: tuple[int, int]
    model_input_shape: tuple[int, int]
    algorithm: str
    #: RNG seed the corpora and seeded runners derive from.
    seed: int = 0
    #: content fingerprint of the generating :class:`DataConfig`; empty
    #: for hand-assembled data (tests), which disables calibration caching.
    fingerprint: str = ""

    @property
    def n_calibration(self) -> int:
        return len(self.calibration.benign)

    @property
    def n_evaluation(self) -> int:
        return len(self.evaluation.benign)


def _materialize_corpora(config: DataConfig, role: str):
    """The (originals, targets) image lists for one corpus role."""
    if role == "calibration":
        originals = neurips_like_corpus(
            config.n_calibration, image_shape=config.source_shape, seed=2017 + config.seed
        )
        targets = neurips_like_corpus(
            config.n_calibration,
            image_shape=config.source_shape,
            seed=4034 + config.seed,
            name="neurips-tgt",
        )
    else:
        originals = caltech_like_corpus(
            config.n_evaluation, image_shape=config.source_shape, seed=256 + config.seed
        )
        targets = caltech_like_corpus(
            config.n_evaluation,
            image_shape=config.source_shape,
            seed=512 + config.seed,
            name="caltech-tgt",
        )
    return originals.materialize(), targets.materialize()


def _attack_set_from_arrays(
    arrays: dict[str, np.ndarray], config: DataConfig
) -> AttackSet:
    return AttackSet(
        benign=[np.array(image) for image in arrays["benign"]],
        attacks=[np.array(image) for image in arrays["attacks"]],
        algorithm=config.algorithm,
        model_input_shape=config.model_input_shape,
        skipped=[int(index) for index in arrays["skipped"]],
    )


def _attack_set_arrays(attack_set: AttackSet, config: DataConfig) -> dict:
    h, w = config.source_shape
    empty = np.zeros((0, h, w, 3), dtype=np.float64)
    return {
        "benign": np.stack(attack_set.benign) if attack_set.benign else empty,
        "attacks": np.stack(attack_set.attacks) if attack_set.attacks else empty,
        "skipped": np.asarray(attack_set.skipped, dtype=np.int64),
    }


def _build_attack_set_for_role(
    config: DataConfig, role: str, cache: ExperimentCache | None
) -> AttackSet:
    """Build (or load) one role's attack set, recording stage timings.

    Corpus materialization lands in the ``prepare`` stage and the
    expensive attack crafting in ``attack-gen``; a cache hit skips both.
    """
    role_config = config.role_config(role)
    if cache is not None:
        arrays = cache.load_arrays("attack-set", role_config)
        if arrays is not None:
            return _attack_set_from_arrays(arrays, config)
    with stage("prepare"):
        originals, targets = _materialize_corpora(config, role)
    with stage("attack-gen"):
        attack_set = build_attack_set(
            originals,
            targets,
            model_input_shape=config.model_input_shape,
            algorithm=config.algorithm,
            config=AttackConfig(epsilon=config.epsilon),
        )
    if cache is not None:
        cache.store_arrays("attack-set", role_config, _attack_set_arrays(attack_set, config))
    return attack_set


def build_experiment_data(
    config: DataConfig, *, cache: ExperimentCache | None = None
) -> ExperimentData:
    """Build the two-corpus :class:`ExperimentData` for *config*.

    With a *cache*, each attack set is served from its content address
    when present (zero corpus generation, zero attack crafting) and
    stored after a cold build.
    """
    return ExperimentData(
        calibration=_build_attack_set_for_role(config, "calibration", cache),
        evaluation=_build_attack_set_for_role(config, "evaluation", cache),
        source_shape=config.source_shape,
        model_input_shape=config.model_input_shape,
        algorithm=config.algorithm,
        seed=config.seed,
        fingerprint=config.fingerprint(),
    )


@lru_cache(maxsize=8)
def prepare_data(
    n_calibration: int = 100,
    n_evaluation: int = 100,
    *,
    source_shape: tuple[int, int] = DEFAULT_SOURCE_SHAPE,
    model_input_shape: tuple[int, int] = DEFAULT_MODEL_INPUT,
    algorithm: str = "bilinear",
    epsilon: float = 4.0,
    seed: int = 0,
) -> ExperimentData:
    """Build (and cache in-process) the two-corpus experiment dataset.

    The paper uses 1000+1000 images per corpus; the default 100+100 keeps
    a full benchmark run in CPU-minutes while preserving every qualitative
    result. Pass larger counts for a paper-scale run. For on-disk caching
    across processes and sessions, use :class:`repro.eval.mediator
    .ExperimentMediator` (or :func:`build_experiment_data` directly).
    """
    return build_experiment_data(
        DataConfig(
            n_calibration=n_calibration,
            n_evaluation=n_evaluation,
            source_shape=source_shape,
            model_input_shape=model_input_shape,
            algorithm=algorithm,
            epsilon=epsilon,
            seed=seed,
        )
    )
