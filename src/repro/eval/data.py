"""Shared experiment data: corpora + crafted attack sets, built once.

Every table/figure experiment needs the same expensive inputs — a
calibration corpus with matching attack images (paper: NeurIPS-2017) and
an unseen evaluation corpus with its own attack images (paper: Caltech-256).
:func:`prepare_data` builds them deterministically and caches by parameters
so a benchmark session crafts each attack image exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.attacks.base import AttackConfig
from repro.core.pipeline import AttackSet, build_attack_set
from repro.datasets.corpus import caltech_like_corpus, neurips_like_corpus

__all__ = ["ExperimentData", "prepare_data", "DEFAULT_SOURCE_SHAPE", "DEFAULT_MODEL_INPUT"]

#: Source ("camera") image size used across experiments. The paper works
#: with NeurIPS-2017 images (299²) and Caltech-256 photos; 256² keeps the
#: same ~8x downscale ratio against the 32² model input at laptop cost.
DEFAULT_SOURCE_SHAPE = (256, 256)
#: Model input size (LeNet-class models in paper Table 1 use 32x32).
DEFAULT_MODEL_INPUT = (32, 32)


@dataclass(frozen=True)
class ExperimentData:
    """Calibration and evaluation attack sets plus their parameters."""

    calibration: AttackSet
    evaluation: AttackSet
    source_shape: tuple[int, int]
    model_input_shape: tuple[int, int]
    algorithm: str

    @property
    def n_calibration(self) -> int:
        return len(self.calibration.benign)

    @property
    def n_evaluation(self) -> int:
        return len(self.evaluation.benign)


@lru_cache(maxsize=8)
def prepare_data(
    n_calibration: int = 100,
    n_evaluation: int = 100,
    *,
    source_shape: tuple[int, int] = DEFAULT_SOURCE_SHAPE,
    model_input_shape: tuple[int, int] = DEFAULT_MODEL_INPUT,
    algorithm: str = "bilinear",
    epsilon: float = 4.0,
    seed: int = 0,
) -> ExperimentData:
    """Build (and cache) the two-corpus experiment dataset.

    The paper uses 1000+1000 images per corpus; the default 100+100 keeps
    a full benchmark run in CPU-minutes while preserving every qualitative
    result. Pass larger counts for a paper-scale run.
    """
    config = AttackConfig(epsilon=epsilon)
    cal_originals = neurips_like_corpus(
        n_calibration, image_shape=source_shape, seed=2017 + seed
    ).materialize()
    cal_targets = neurips_like_corpus(
        n_calibration, image_shape=source_shape, seed=4034 + seed, name="neurips-tgt"
    ).materialize()
    ev_originals = caltech_like_corpus(
        n_evaluation, image_shape=source_shape, seed=256 + seed
    ).materialize()
    ev_targets = caltech_like_corpus(
        n_evaluation, image_shape=source_shape, seed=512 + seed, name="caltech-tgt"
    ).materialize()
    calibration = build_attack_set(
        cal_originals,
        cal_targets,
        model_input_shape=model_input_shape,
        algorithm=algorithm,
        config=config,
    )
    evaluation = build_attack_set(
        ev_originals,
        ev_targets,
        model_input_shape=model_input_shape,
        algorithm=algorithm,
        config=config,
    )
    return ExperimentData(
        calibration=calibration,
        evaluation=evaluation,
        source_shape=source_shape,
        model_input_shape=model_input_shape,
        algorithm=algorithm,
    )
