"""Ambient run context: per-stage timings and the calibration cache.

The mediator activates one :class:`RunContext` per experiment cell; code
that runs underneath it — data preparation, the experiment runners —
reports stage durations with :func:`stage` and consults the
content-addressed cache through :func:`cached_calibration` /
:func:`cached_ensemble_calibration`. When no context is active (direct
calls to the runner functions, the test suite, library users) every hook
degrades to a no-op and the wrapped computation runs unchanged — which is
what keeps the mediator's results bit-identical to direct runner calls.

A :class:`contextvars.ContextVar` carries the context so process fan-out
(each worker activates its own) and nested sweeps stay isolated.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.core.ensemble import DetectionEnsemble
from repro.core.detector import Detector
from repro.core.result import Direction, ThresholdRule
from repro.eval.cache import ExperimentCache
from repro.imaging.plans import scoring_mode

__all__ = [
    "RunContext",
    "activate",
    "cached_calibration",
    "cached_ensemble_calibration",
    "current_context",
    "stage",
]

_ACTIVE: contextvars.ContextVar["RunContext | None"] = contextvars.ContextVar(
    "repro_eval_run_context", default=None
)


@dataclass
class RunContext:
    """State shared by everything running inside one experiment cell."""

    #: cumulative seconds per stage name ("prepare", "attack-gen", ...).
    timings: dict[str, float] = field(default_factory=dict)
    #: content-addressed cache, or None to compute everything fresh.
    cache: ExperimentCache | None = None
    #: stable fingerprint of the data config — the cache-key component
    #: that ties calibration artifacts to the corpus they came from.
    data_fingerprint: str = ""


def current_context() -> RunContext | None:
    """The active context, or ``None`` outside a mediator run."""
    return _ACTIVE.get()


@contextlib.contextmanager
def activate(context: RunContext):
    """Make *context* the ambient run context for the enclosed block."""
    token = _ACTIVE.set(context)
    try:
        yield context
    finally:
        _ACTIVE.reset(token)


@contextlib.contextmanager
def stage(name: str):
    """Accumulate the enclosed block's wall time under stage *name*.

    No-op (beyond one clock read) when no context is active.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        context = _ACTIVE.get()
        if context is not None:
            elapsed = time.perf_counter() - start
            context.timings[name] = context.timings.get(name, 0.0) + elapsed


def _calibration_key(detector: Detector, key_fields: Mapping) -> dict:
    # Plan and exact scoring agree only to the documented tolerance, so a
    # threshold calibrated in one mode is not byte-interchangeable with the
    # other: the mode is part of the cache identity.
    return {
        "data": _ACTIVE.get().data_fingerprint,
        "method": detector.method,
        "metric": detector.metric,
        "scoring_mode": scoring_mode(),
        **dict(key_fields),
    }


def _cache_usable() -> bool:
    context = _ACTIVE.get()
    return (
        context is not None
        and context.cache is not None
        and bool(context.data_fingerprint)
    )


def cached_calibration(
    detector: Detector,
    key_fields: Mapping,
    compute: Callable[[], ThresholdRule],
) -> ThresholdRule:
    """Calibrate *detector*, serving the threshold from cache when possible.

    *key_fields* must pin down everything that determines the threshold
    besides the detector identity and the data (strategy, percentile, ...).
    On a hit the cached rule is installed on the detector without scoring
    a single image; on a miss *compute* runs (it must leave the detector
    calibrated, i.e. be the ordinary ``detector.calibrate(...)`` call) and
    the resulting rule is stored. Without an active cache this is exactly
    ``compute()``.
    """
    if not _cache_usable():
        return compute()
    context = _ACTIVE.get()
    config = _calibration_key(detector, key_fields)
    entry = context.cache.load_json("calibration", config)
    if entry is not None:
        rule = ThresholdRule(
            value=float(entry["value"]), direction=Direction(entry["direction"])
        )
        detector.threshold = rule
        return rule
    rule = compute()
    context.cache.store_json(
        "calibration", config, {"value": rule.value, "direction": rule.direction.value}
    )
    return rule


def cached_ensemble_calibration(
    ensemble: DetectionEnsemble,
    key_fields: Mapping,
    compute: Callable[[], dict[str, ThresholdRule]],
) -> dict[str, ThresholdRule]:
    """Ensemble counterpart of :func:`cached_calibration`.

    The cached artifact is the full rule set keyed by ``method/metric``;
    a hit installs every member's threshold (steganalysis keeps its fixed
    rule and is absent from the set, mirroring ``ensemble.calibrate``).
    """
    if not _cache_usable():
        return compute()
    context = _ACTIVE.get()
    members = sorted(
        f"{detector.method}/{detector.metric}" for detector in ensemble.detectors
    )
    config = {
        "data": context.data_fingerprint,
        "members": members,
        "scoring_mode": scoring_mode(),
        **dict(key_fields),
    }
    entry = context.cache.load_json("calibration", config)
    if entry is not None:
        by_name = {
            f"{detector.method}/{detector.metric}": detector
            for detector in ensemble.detectors
        }
        rules: dict[str, ThresholdRule] = {}
        for name, stored in entry.items():
            rule = ThresholdRule(
                value=float(stored["value"]), direction=Direction(stored["direction"])
            )
            by_name[name].threshold = rule
            rules[name] = rule
        return rules
    rules = compute()
    context.cache.store_json(
        "calibration",
        config,
        {
            name: {"value": rule.value, "direction": rule.direction.value}
            for name, rule in rules.items()
        },
    )
    return rules
