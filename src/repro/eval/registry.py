"""Experiment registry: the single authoritative index of runners.

Every paper table/figure runner (and the sensitivity sweeps) registers
itself with the :func:`experiment` decorator; the mediator, the report
generator, the benchmarks, and the ``repro exp`` CLI all read this one
index instead of maintaining their own lists.

Registration happens as a side effect of importing the defining modules,
so any consumer that wants the *complete* index calls :func:`load_all`
first (cheap after the first call — imports are cached).
"""

from __future__ import annotations

import importlib
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import EvalError

__all__ = [
    "ExperimentSpec",
    "experiment",
    "get_spec",
    "load_all",
    "registered_experiments",
    "resolve_experiment_id",
]

#: id -> spec, in registration order (re-sorted by ``order`` on read).
_REGISTRY: dict[str, "ExperimentSpec"] = {}

#: Modules whose import populates the registry.
_PROVIDER_MODULES = (
    "repro.eval.experiments",
    "repro.eval.runtime",
    "repro.eval.sweeps",
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: identity, runner, and how to call it."""

    experiment_id: str
    title: str
    runner: Callable
    #: False for static artifacts (T1) that take no ExperimentData.
    needs_data: bool = True
    #: alternate ids accepted by the CLI/mediator ("F9" for "F9/F10").
    aliases: tuple[str, ...] = ()
    #: position in the canonical report ordering (ascending).
    order: int = 0
    #: include in ``repro report`` / ``run_all_experiments`` output.
    in_report: bool = True
    kind: str = field(default="table", compare=False)

    def run(self, data=None):
        """Invoke the runner with the calling convention it registered."""
        if self.needs_data:
            return self.runner(data)
        return self.runner()


def experiment(
    experiment_id: str,
    *,
    title: str,
    needs_data: bool = True,
    aliases: tuple[str, ...] = (),
    order: int = 0,
    in_report: bool = True,
    kind: str = "table",
) -> Callable:
    """Decorator registering a runner under *experiment_id*.

    The decorated function is returned unchanged, so direct calls keep
    working exactly as before registration existed.
    """

    def decorate(fn: Callable) -> Callable:
        spec = ExperimentSpec(
            experiment_id=experiment_id,
            title=title,
            runner=fn,
            needs_data=needs_data,
            aliases=tuple(aliases),
            order=order,
            in_report=in_report,
            kind=kind,
        )
        existing = _REGISTRY.get(experiment_id)
        if existing is not None and existing.runner is not fn:
            raise EvalError(
                f"experiment id {experiment_id!r} registered twice "
                f"({existing.runner.__qualname__} and {fn.__qualname__})"
            )
        _REGISTRY[experiment_id] = spec
        return fn

    return decorate


def load_all() -> None:
    """Import every provider module so the registry is complete."""
    for module in _PROVIDER_MODULES:
        importlib.import_module(module)


def registered_experiments() -> list[ExperimentSpec]:
    """Every registered spec, in canonical (``order``) sequence."""
    load_all()
    return sorted(_REGISTRY.values(), key=lambda spec: (spec.order, spec.experiment_id))


def resolve_experiment_id(name: str) -> str:
    """Map a user-supplied name (id or alias, case-insensitive) to an id.

    Raises :class:`~repro.errors.EvalError` naming the known ids when the
    name matches nothing — the CLI turns that into a clean ``error:`` line.
    """
    load_all()
    if name in _REGISTRY:
        return name
    lowered = name.lower()
    for spec in _REGISTRY.values():
        if spec.experiment_id.lower() == lowered:
            return spec.experiment_id
        if any(alias.lower() == lowered for alias in spec.aliases):
            return spec.experiment_id
    known = ", ".join(spec.experiment_id for spec in registered_experiments())
    raise EvalError(f"unknown experiment {name!r}; known: {known}")


def get_spec(name: str) -> ExperimentSpec:
    """The spec for *name* (id or alias)."""
    return _REGISTRY[resolve_experiment_id(name)]
