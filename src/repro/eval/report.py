"""Full-report generation: run every experiment and render the results.

``python -m repro report`` (see :mod:`repro.cli`) and the EXPERIMENTS.md
regeneration path both go through :func:`run_all_experiments`.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.eval import experiments as exp
from repro.eval.data import ExperimentData, prepare_data
from repro.eval.experiments import ExperimentResult
from repro.eval.runtime import table7_runtime

__all__ = ["EXPERIMENT_RUNNERS", "run_all_experiments", "render_report"]

#: Ordered registry of every experiment, keyed by artifact id.
EXPERIMENT_RUNNERS: dict[str, Callable[[ExperimentData], ExperimentResult]] = {
    "T1": lambda data: exp.table1_input_sizes(),
    "F8": exp.fig8_threshold_search,
    "F9/F10": exp.fig9_fig10_scaling_distributions,
    "T2": exp.table2_scaling_whitebox,
    "T3": exp.table3_scaling_blackbox,
    "F11/F12": exp.fig11_fig12_filtering_distributions,
    "T4": exp.table4_filtering_whitebox,
    "T5": exp.table5_filtering_blackbox,
    "F13": exp.fig13_csp_distribution,
    "T6": exp.table6_steganalysis,
    "T7": lambda data: table7_runtime(
        data.evaluation.benign[: min(30, len(data.evaluation.benign))],
        model_input_shape=data.model_input_shape,
        algorithm=data.algorithm,
    ),
    "T8": exp.table8_ensemble,
    "T9": exp.table9_missed_attacks,
    "AF15/AF16": exp.appendix_psnr,
    "AB1": exp.ablation_histogram_metric,
    "AB2": exp.ablation_adaptive_attacks,
    "AB3": exp.ablation_prevention_defenses,
    "AB4": exp.ablation_benign_transforms,
    "AB5": exp.ablation_surface_sweep,
    "AB6": exp.ablation_jpeg_reencoding,
}


def run_all_experiments(
    *,
    n_calibration: int = 100,
    n_evaluation: int = 100,
    only: list[str] | None = None,
) -> list[ExperimentResult]:
    """Run the full (or filtered) experiment suite and return the results."""
    selected = only or list(EXPERIMENT_RUNNERS)
    data: ExperimentData | None = None
    results = []
    for key in selected:
        runner = EXPERIMENT_RUNNERS[key]
        if key != "T1" and data is None:
            # Attack-set construction is the expensive step; defer it so
            # data-free experiments (T1) stay instant.
            data = prepare_data(n_calibration, n_evaluation)
        results.append(runner(data))
    return results


def render_report(results: list[ExperimentResult]) -> str:
    """Render experiment results into one text report."""
    sections = [result.to_text() for result in results]
    return ("\n\n" + "=" * 72 + "\n\n").join(sections)
