"""Full-report generation: run every experiment and render the results.

``python -m repro report`` (see :mod:`repro.cli`) and the EXPERIMENTS.md
regeneration path both go through :func:`run_all_experiments`.

The experiment index lives in :mod:`repro.eval.registry`; this module
just projects the registered, report-eligible specs into the
``EXPERIMENT_RUNNERS`` mapping that older callers (and the tests) use.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.eval.data import ExperimentData, prepare_data
from repro.eval.experiments import ExperimentResult
from repro.eval.registry import registered_experiments

__all__ = ["EXPERIMENT_RUNNERS", "run_all_experiments", "render_report"]


def _as_data_runner(spec) -> Callable[[ExperimentData], ExperimentResult]:
    """Uniform ``runner(data)`` call shape regardless of ``needs_data``."""
    return lambda data, spec=spec: spec.run(data)


#: Ordered registry of every report experiment, keyed by artifact id.
EXPERIMENT_RUNNERS: dict[str, Callable[[ExperimentData], ExperimentResult]] = {
    spec.experiment_id: _as_data_runner(spec)
    for spec in registered_experiments()
    if spec.in_report
}


def run_all_experiments(
    *,
    n_calibration: int = 100,
    n_evaluation: int = 100,
    only: list[str] | None = None,
) -> list[ExperimentResult]:
    """Run the full (or filtered) experiment suite and return the results."""
    selected = only or list(EXPERIMENT_RUNNERS)
    data: ExperimentData | None = None
    results = []
    for key in selected:
        runner = EXPERIMENT_RUNNERS[key]
        if key != "T1" and data is None:
            # Attack-set construction is the expensive step; defer it so
            # data-free experiments (T1) stay instant.
            data = prepare_data(n_calibration, n_evaluation)
        results.append(runner(data))
    return results


def render_report(results: list[ExperimentResult]) -> str:
    """Render experiment results into one text report."""
    sections = [result.to_text() for result in results]
    return ("\n\n" + "=" * 72 + "\n\n").join(sections)
