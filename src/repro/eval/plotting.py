"""Minimal chart rendering on the :mod:`repro.imaging.draw` rasterizer.

Three chart types cover every figure in the paper:

* :func:`histogram_chart` — overlaid population histograms with an optional
  threshold marker (Figs. 9–12, appendix 15–16);
* :func:`line_chart` — x/y series (Fig. 8 threshold-search curves);
* :func:`bar_chart` — labelled bars (Fig. 13 CSP distribution).

Charts return float64 RGB canvases; callers save them with
:func:`repro.imaging.png.write_png`. The goal is faithful, dependency-free
figure regeneration — clarity over beauty.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ImageError
from repro.imaging.draw import draw_line, draw_text, fill_rect, new_canvas, text_width

__all__ = ["histogram_chart", "line_chart", "bar_chart", "PALETTE"]

#: Default series colors (benign blue, attack red, extras).
PALETTE = [
    (66.0, 103.0, 178.0),
    (214.0, 69.0, 65.0),
    (60.0, 160.0, 90.0),
    (230.0, 160.0, 30.0),
]

_BLACK = (20.0, 20.0, 20.0)
_GRAY = (190.0, 190.0, 190.0)

_MARGIN_LEFT = 56
_MARGIN_RIGHT = 16
_MARGIN_TOP = 28
_MARGIN_BOTTOM = 36


class _Frame:
    """Plot frame: margins, axes, data-to-pixel transform."""

    def __init__(self, canvas: np.ndarray, x_range: tuple[float, float], y_range: tuple[float, float]):
        self.canvas = canvas
        h, w = canvas.shape[:2]
        self.top = _MARGIN_TOP
        self.bottom = h - _MARGIN_BOTTOM
        self.left = _MARGIN_LEFT
        self.right = w - _MARGIN_RIGHT
        x_lo, x_hi = x_range
        y_lo, y_hi = y_range
        if x_hi <= x_lo or y_hi <= y_lo:
            raise ImageError(f"degenerate axis range: x={x_range}, y={y_range}")
        self.x_lo, self.x_hi = x_lo, x_hi
        self.y_lo, self.y_hi = y_lo, y_hi

    def x_to_col(self, x: float) -> int:
        frac = (x - self.x_lo) / (self.x_hi - self.x_lo)
        return int(round(self.left + frac * (self.right - self.left)))

    def y_to_row(self, y: float) -> int:
        frac = (y - self.y_lo) / (self.y_hi - self.y_lo)
        return int(round(self.bottom - frac * (self.bottom - self.top)))

    def draw_axes(self, title: str, x_label: str = "", y_label: str = "") -> None:
        draw_line(self.canvas, self.bottom, self.left, self.bottom, self.right, _BLACK)
        draw_line(self.canvas, self.top, self.left, self.bottom, self.left, _BLACK)
        draw_text(self.canvas, 8, self.left, title[:48], _BLACK)
        if x_label:
            draw_text(
                self.canvas,
                self.bottom + 18,
                (self.left + self.right) // 2 - text_width(x_label) // 2,
                x_label[:32],
                _BLACK,
            )
        if y_label:
            draw_text(self.canvas, self.top - 12, 2, y_label[:10], _BLACK)
        # Numeric extremes on both axes.
        draw_text(self.canvas, self.bottom + 4, self.left, _fmt(self.x_lo), _BLACK)
        x_hi_text = _fmt(self.x_hi)
        draw_text(self.canvas, self.bottom + 4, self.right - text_width(x_hi_text), x_hi_text, _BLACK)
        draw_text(self.canvas, self.bottom - 7, 2, _fmt(self.y_lo), _BLACK)
        draw_text(self.canvas, self.top, 2, _fmt(self.y_hi), _BLACK)

    def legend(self, labels: Sequence[str], colors: Sequence[tuple[float, float, float]]) -> None:
        row = self.top + 4
        for label, color in zip(labels, colors):
            fill_rect(self.canvas, row, self.right - 90, row + 7, self.right - 82, color)
            draw_text(self.canvas, row, self.right - 78, label[:12], _BLACK)
            row += 12


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e5:
        return str(int(value))
    if abs(value) >= 100 or abs(value) < 0.01:
        return f"{value:.1e}".replace("e+0", "e").replace("e-0", "e-")
    return f"{value:.2f}"


def histogram_chart(
    populations: dict[str, Sequence[float]],
    *,
    title: str,
    bins: int = 24,
    threshold: float | None = None,
    size: tuple[int, int] = (240, 420),
    x_label: str = "score",
) -> np.ndarray:
    """Overlaid histograms of named score populations.

    Each population is drawn as semi-transparent bars in its palette color;
    an optional vertical ``threshold`` marker reproduces the paper's red
    dashed threshold lines.
    """
    if not populations:
        raise ImageError("histogram_chart needs at least one population")
    values = np.concatenate([np.asarray(list(v), dtype=np.float64) for v in populations.values()])
    lo, hi = float(values.min()), float(values.max())
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    counts = {
        name: np.histogram(np.asarray(list(v), dtype=np.float64), bins=edges)[0]
        for name, v in populations.items()
    }
    y_max = max(int(c.max()) for c in counts.values()) or 1

    canvas = new_canvas(*size)
    frame = _Frame(canvas, (lo, hi), (0.0, float(y_max)))
    frame.draw_axes(title, x_label=x_label, y_label="COUNT")

    for index, (name, hist) in enumerate(counts.items()):
        color = PALETTE[index % len(PALETTE)]
        for b in range(bins):
            if hist[b] == 0:
                continue
            col0 = frame.x_to_col(edges[b]) + index  # slight offset per series
            col1 = frame.x_to_col(edges[b + 1])
            row0 = frame.y_to_row(float(hist[b]))
            # Blend bars so overlap stays visible.
            r0, r1 = sorted((row0, frame.bottom))
            c0, c1 = sorted((col0, max(col0 + 1, col1)))
            region = canvas[r0:r1, c0:c1]
            canvas[r0:r1, c0:c1] = 0.45 * region + 0.55 * np.asarray(color)
    frame.legend(list(counts), PALETTE)

    if threshold is not None and lo <= threshold <= hi:
        col = frame.x_to_col(threshold)
        for row in range(frame.top, frame.bottom, 6):  # dashed
            draw_line(canvas, row, col, min(row + 3, frame.bottom), col, (200.0, 30.0, 30.0))
        draw_text(canvas, frame.top - 12, max(col - 20, frame.left), f"T={_fmt(threshold)}", (200.0, 30.0, 30.0))
    return canvas


def line_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str,
    size: tuple[int, int] = (240, 420),
    x_label: str = "",
    y_label: str = "",
    marker: float | None = None,
) -> np.ndarray:
    """Polyline chart of named (xs, ys) series with an optional x marker."""
    if not series:
        raise ImageError("line_chart needs at least one series")
    all_x = np.concatenate([np.asarray(list(xs), dtype=np.float64) for xs, _ in series.values()])
    all_y = np.concatenate([np.asarray(list(ys), dtype=np.float64) for _, ys in series.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    canvas = new_canvas(*size)
    frame = _Frame(canvas, (x_lo, x_hi), (y_lo, y_hi))
    frame.draw_axes(title, x_label=x_label, y_label=y_label)
    for index, (name, (xs, ys)) in enumerate(series.items()):
        color = PALETTE[index % len(PALETTE)]
        points = [
            (frame.y_to_row(float(y)), frame.x_to_col(float(x)))
            for x, y in zip(xs, ys)
        ]
        for (r0, c0), (r1, c1) in zip(points, points[1:]):
            draw_line(canvas, r0, c0, r1, c1, color)
    frame.legend(list(series), PALETTE)
    if marker is not None and x_lo <= marker <= x_hi:
        col = frame.x_to_col(marker)
        for row in range(frame.top, frame.bottom, 6):
            draw_line(canvas, row, col, min(row + 3, frame.bottom), col, (200.0, 30.0, 30.0))
    return canvas


def bar_chart(
    bars: dict[str, float],
    *,
    title: str,
    size: tuple[int, int] = (240, 420),
    y_label: str = "",
    colors: Sequence[tuple[float, float, float]] | None = None,
) -> np.ndarray:
    """Labelled vertical bars (used for the CSP count distribution)."""
    if not bars:
        raise ImageError("bar_chart needs at least one bar")
    y_max = max(bars.values()) or 1.0
    canvas = new_canvas(*size)
    frame = _Frame(canvas, (0.0, float(len(bars))), (0.0, float(y_max)))
    frame.draw_axes(title, y_label=y_label)
    slot = (frame.right - frame.left) / len(bars)
    for index, (label, value) in enumerate(bars.items()):
        color = (colors or PALETTE)[index % len(colors or PALETTE)]
        col0 = int(frame.left + index * slot + 0.15 * slot)
        col1 = int(frame.left + (index + 1) * slot - 0.15 * slot)
        fill_rect(canvas, frame.y_to_row(value), col0, frame.bottom, col1, color)
        draw_text(
            canvas,
            frame.bottom + 4,
            (col0 + col1) // 2 - text_width(label[:6]) // 2,
            label[:6],
            _BLACK,
        )
    return canvas
