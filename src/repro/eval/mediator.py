"""One orchestration API for every experiment.

:class:`ExperimentMediator` is the single entry point that ties together
the registry (which experiments exist), the data builder (what corpus a
config produces), the content-addressed cache (never regenerate an
artifact the config already paid for), the run manifest (resume a killed
sweep where it stopped), and process fan-out (``jobs=N`` across
(experiment x config) cells):

    results = (
        ExperimentMediator.setup(n_calibration=50, seed=7, cache_dir=".cache")
        .run(["T2", "T8", "F9"])
    )

Guarantees the tests pin down:

* **parity** — a mediator run of an experiment returns rows identical to
  calling the runner function directly on :func:`~repro.eval.data
  .prepare_data` output, because both go through the same build path and
  every cache/timing hook is a no-op outside a mediator context;
* **warm-cache zero regeneration** — a second identical run serves every
  attack set and calibration artifact from the cache (hit counters prove
  no image was regenerated);
* **deterministic merge** — results come back in cell order regardless
  of ``jobs``; a parallel run's rows equal the serial run's.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import json
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import EvalError
from repro.eval.cache import ExperimentCache, cache_key
from repro.eval.data import DataConfig, ExperimentData, build_experiment_data
from repro.eval.experiments import ExperimentResult
from repro.eval.registry import ExperimentSpec, get_spec, registered_experiments
from repro.eval.stages import RunContext, activate, stage
from repro.observability import Metrics

__all__ = ["ExperimentCell", "ExperimentMediator"]


@dataclass(frozen=True)
class ExperimentCell:
    """One unit of work: an experiment run against one data config."""

    experiment_id: str
    config: DataConfig
    #: the sweep-axis values that produced this config ({} outside sweeps).
    overrides: dict = field(default_factory=dict)

    def key(self) -> str:
        """Content address of the cell — the manifest/resume key."""
        return cache_key(
            "cell", {"experiment": self.experiment_id, "config": self.config.as_dict()}
        )


def _result_payload(cell: ExperimentCell, result: ExperimentResult) -> dict:
    """JSON-ready manifest record for one completed cell."""
    return {
        "cell": cell.key(),
        "experiment": cell.experiment_id,
        "config": cell.config.as_dict(),
        "overrides": cell.overrides,
        "title": result.title,
        "rows": result.rows,
        "paper_reference": result.paper_reference,
        "notes": result.notes,
        "timings": result.timings,
    }


def _result_from_payload(payload: Mapping) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=str(payload["experiment"]),
        title=str(payload["title"]),
        rows=list(payload["rows"]),
        paper_reference=list(payload["paper_reference"]),
        notes=str(payload["notes"]),
        timings=dict(payload["timings"]),
    )


def _execute_cell(
    spec: ExperimentSpec,
    config: DataConfig,
    cache: ExperimentCache | None,
    data_memo: dict[str, ExperimentData],
) -> ExperimentResult:
    """Run one cell under an activated context; fill ``result.timings``.

    ``data_memo`` (fingerprint -> built data) lets cells sharing a config
    within one process skip even the cache round trip. The ``score``
    stage is derived: runner wall time minus the calibration time the
    runner reported, so the two never double-count.
    """
    context = RunContext(cache=cache, data_fingerprint=config.fingerprint())
    with activate(context):
        data = None
        if spec.needs_data:
            fingerprint = config.fingerprint()
            data = data_memo.get(fingerprint)
            if data is None:
                data = build_experiment_data(config, cache=cache)
                data_memo[fingerprint] = data
        calibrate_before = context.timings.get("calibrate", 0.0)
        start = time.perf_counter()
        result = spec.run(data)
        wall = time.perf_counter() - start
        with stage("render"):
            result.to_text()
    timings = dict(context.timings)
    calibrate_delta = timings.get("calibrate", 0.0) - calibrate_before
    timings["score"] = max(0.0, wall - calibrate_delta)
    result.timings = timings
    return result


def _worker_run_cell(payload: dict):
    """Process-pool entry point: rebuild state from the pickled payload.

    Returns the result plus this worker's cache counters so the parent
    can fold them into its own metrics (counters are per-process).
    """
    spec = get_spec(payload["experiment"])
    config = DataConfig.from_dict(payload["config"])
    cache = None
    if payload["cache_dir"] is not None:
        cache = ExperimentCache(payload["cache_dir"], metrics=Metrics())
    result = _execute_cell(spec, config, cache, {})
    counters = cache.stats()["counters"] if cache is not None else {}
    return result, counters


class ExperimentMediator:
    """Registry-driven runner for any subset of the paper's experiments."""

    def __init__(
        self,
        config: DataConfig,
        *,
        cache_dir: str | Path | None = None,
        manifest: str | Path | None = None,
        jobs: int = 1,
        metrics: Metrics | None = None,
    ) -> None:
        if jobs < 1:
            raise EvalError(f"jobs must be >= 1, got {jobs}")
        self.config = config
        self.jobs = jobs
        self.metrics = metrics if metrics is not None else Metrics()
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.cache = (
            None
            if cache_dir is None
            else ExperimentCache(cache_dir, metrics=self.metrics)
        )
        self.manifest = None if manifest is None else Path(manifest)
        self._data_memo: dict[str, ExperimentData] = {}

    @classmethod
    def setup(
        cls,
        *,
        cache_dir: str | Path | None = None,
        manifest: str | Path | None = None,
        jobs: int = 1,
        metrics: Metrics | None = None,
        **config_fields,
    ) -> "ExperimentMediator":
        """Build a mediator from :class:`~repro.eval.data.DataConfig` fields.

        ``ExperimentMediator.setup(n_calibration=50, seed=3).run([...])``
        is the canonical call shape; unknown config fields raise
        :class:`~repro.errors.EvalError` rather than being ignored.
        """
        known = set(DataConfig.__dataclass_fields__)
        unknown = sorted(set(config_fields) - known)
        if unknown:
            raise EvalError(
                f"unknown data config fields {unknown}; known: {sorted(known)}"
            )
        return cls(
            DataConfig(**config_fields),
            cache_dir=cache_dir,
            manifest=manifest,
            jobs=jobs,
            metrics=metrics,
        )

    # -- introspection -----------------------------------------------------

    @staticmethod
    def available() -> list[ExperimentSpec]:
        """Every registered experiment, in canonical report order."""
        return registered_experiments()

    def data(self) -> ExperimentData:
        """The (cached) :class:`ExperimentData` for this mediator's config."""
        fingerprint = self.config.fingerprint()
        data = self._data_memo.get(fingerprint)
        if data is None:
            context = RunContext(cache=self.cache, data_fingerprint=fingerprint)
            with activate(context):
                data = build_experiment_data(self.config, cache=self.cache)
            self._data_memo[fingerprint] = data
        return data

    def cache_stats(self) -> dict | None:
        """Hit/miss totals for the attached cache (None without one)."""
        return None if self.cache is None else self.cache.stats()

    # -- running -----------------------------------------------------------

    def run(self, names: Sequence[str], *, jobs: int | None = None) -> list[ExperimentResult]:
        """Run the named experiments against this mediator's config.

        Names may be registry ids or aliases (``"F9"`` for ``"F9/F10"``).
        Results come back in the order the names were given.
        """
        cells = [
            ExperimentCell(get_spec(name).experiment_id, self.config)
            for name in names
        ]
        return self._run_cells(cells, jobs=jobs)

    def run_one(self, name: str, **kwargs) -> ExperimentResult:
        """Run a single experiment (id or alias) and return its result."""
        return self.run([name], **kwargs)[0]

    def sweep(
        self,
        names: Sequence[str],
        axes: Mapping[str, Sequence],
        *,
        jobs: int | None = None,
    ) -> list[tuple[ExperimentCell, ExperimentResult]]:
        """Run *names* across the cartesian product of config *axes*.

        ``axes`` maps :class:`DataConfig` field names to the values to
        sweep (``{"algorithm": ["bilinear", "bicubic"], "epsilon": [2, 4]}``).
        Returns ``(cell, result)`` pairs in deterministic product order:
        axes vary slowest-first in the order given, experiments innermost.
        """
        known = set(DataConfig.__dataclass_fields__)
        bad = sorted(set(axes) - known)
        if bad:
            raise EvalError(f"unknown sweep axes {bad}; known: {sorted(known)}")
        axis_names = list(axes)
        experiment_ids = [get_spec(name).experiment_id for name in names]
        cells = []
        for values in itertools.product(*(axes[name] for name in axis_names)):
            overrides = dict(zip(axis_names, values))
            config = self.config.replace(**overrides)
            for experiment_id in experiment_ids:
                cells.append(ExperimentCell(experiment_id, config, overrides))
        results = self._run_cells(cells, jobs=jobs)
        return list(zip(cells, results))

    # -- internals ---------------------------------------------------------

    def _load_manifest(self) -> dict[str, dict]:
        """Completed-cell payloads keyed by cell key; bad lines skipped.

        A run killed mid-write leaves at most one truncated trailing line;
        tolerating malformed lines (instead of failing the whole resume)
        is what makes SIGKILL recovery safe.
        """
        completed: dict[str, dict] = {}
        if self.manifest is None or not self.manifest.exists():
            return completed
        try:
            text = self.manifest.read_text(encoding="utf-8")
        except OSError:
            return completed
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if not isinstance(payload, dict) or "cell" not in payload:
                continue
            completed[str(payload["cell"])] = payload
        return completed

    def _record_manifest(self, cell: ExperimentCell, result: ExperimentResult) -> None:
        if self.manifest is None:
            return
        line = json.dumps(_result_payload(cell, result), sort_keys=True)
        self.manifest.parent.mkdir(parents=True, exist_ok=True)
        with self.manifest.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def _merge_counters(self, counters: Mapping[str, int]) -> None:
        for name, value in counters.items():
            self.metrics.counter(name).add(int(value))

    def _run_cells(
        self, cells: list[ExperimentCell], *, jobs: int | None = None
    ) -> list[ExperimentResult]:
        jobs = self.jobs if jobs is None else jobs
        if jobs < 1:
            raise EvalError(f"jobs must be >= 1, got {jobs}")
        completed = self._load_manifest()
        results: list[ExperimentResult | None] = [None] * len(cells)
        pending: list[int] = []
        for index, cell in enumerate(cells):
            payload = completed.get(cell.key())
            if payload is not None:
                results[index] = _result_from_payload(payload)
                self.metrics.counter("mediator.cells.resumed").add(1)
            else:
                pending.append(index)
        if pending and jobs > 1:
            self._run_parallel(cells, pending, results, jobs)
        else:
            for index in pending:
                cell = cells[index]
                result = _execute_cell(
                    get_spec(cell.experiment_id), cell.config, self.cache, self._data_memo
                )
                results[index] = result
                self.metrics.counter("mediator.cells.run").add(1)
                self._record_manifest(cell, result)
        return [result for result in results if result is not None]

    def _run_parallel(
        self,
        cells: list[ExperimentCell],
        pending: list[int],
        results: list[ExperimentResult | None],
        jobs: int,
    ) -> None:
        """Fan pending cells out over processes; merge in cell order.

        Futures complete in any order, but results land by index and the
        manifest/metrics merge happens in the parent, so output is
        deterministic — same rows as a serial run.
        """
        workers = min(jobs, len(pending))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for index in pending:
                cell = cells[index]
                payload = {
                    "experiment": cell.experiment_id,
                    "config": cell.config.as_dict(),
                    "cache_dir": self.cache_dir,
                }
                futures[pool.submit(_worker_run_cell, payload)] = index
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                result, counters = future.result()
                results[index] = result
                self._merge_counters(counters)
                self.metrics.counter("mediator.cells.run").add(1)
                self._record_manifest(cells[index], result)
