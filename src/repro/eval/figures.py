"""Figure regeneration: render the paper's figures as PNG files.

Where :mod:`repro.eval.experiments` reproduces each figure's *numbers*,
this module renders the figures themselves with the in-repo rasterizer —
so a full reproduction run leaves behind image files you can hold next to
the paper:

* ``fig01_attack_example.png``  — the sheep/wolf deception (Figs. 1–2)
* ``fig08_threshold_search.png`` — accuracy vs candidate threshold
* ``fig09_scaling_hist_*.png``  — scaling-detector score histograms
* ``fig11_filtering_hist_*.png`` — filtering-detector score histograms
* ``fig13_csp_bars.png``        — CSP count distribution
* ``fig15_psnr_hist_*.png``     — appendix PSNR overlap
* ``fig_min_filter_reveal.png`` — Fig. 4: the minimum filter exposes the target
* ``fig_spectrum_pair.png``     — Fig. 7: benign vs attack binary spectra

All renderers take an :class:`~repro.eval.data.ExperimentData` and an
output directory; they return the written paths.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.analysis import ImageAnalysis
from repro.core.filtering_detector import FilteringDetector
from repro.core.scaling_detector import ScalingDetector
from repro.core.steganalysis_detector import SteganalysisDetector
from repro.core.thresholds import threshold_accuracy
from repro.core.result import ThresholdRule
from repro.eval.data import ExperimentData
from repro.eval.plotting import bar_chart, histogram_chart, line_chart
from repro.imaging.fourier import binary_spectrum
from repro.imaging.image import as_uint8
from repro.imaging.png import write_png
from repro.imaging.scaling import resize

__all__ = [
    "fig_attack_example",
    "fig_min_filter_reveal",
    "fig_spectrum_pair",
    "fig_vulnerability_map",
    "fig8_threshold_search",
    "fig9_scaling_histograms",
    "fig11_filtering_histograms",
    "fig13_csp_bars",
    "fig15_psnr_histograms",
    "render_all_figures",
]


def _montage(panels: list[np.ndarray], *, pad: int = 6) -> np.ndarray:
    """Stack equally-resized panels horizontally on a white background."""
    height = max(p.shape[0] for p in panels)
    resized = [
        p if p.shape[0] == height else resize(p, (height, int(p.shape[1] * height / p.shape[0])))
        for p in panels
    ]
    width = sum(p.shape[1] for p in resized) + pad * (len(resized) + 1)
    canvas = np.full((height + 2 * pad, width, 3), 255.0)
    col = pad
    for panel in resized:
        rgb = panel if panel.ndim == 3 else np.stack([panel] * 3, axis=2)
        canvas[pad : pad + rgb.shape[0], col : col + rgb.shape[1]] = rgb[:, :, :3]
        col += rgb.shape[1] + pad
    return canvas


def _gray_to_rgb(plane: np.ndarray) -> np.ndarray:
    return np.stack([plane] * 3, axis=2)


def fig_attack_example(data: ExperimentData, out_dir: Path) -> Path:
    """Figs. 1–2: original | attack | what-the-model-sees montage."""
    original = np.asarray(data.calibration.benign[0], dtype=np.float64)
    attack = data.calibration.attacks[0]
    model_view = resize(attack, data.model_input_shape, data.algorithm)
    blown_up = resize(model_view, original.shape[:2], "nearest")
    path = out_dir / "fig01_attack_example.png"
    write_png(path, as_uint8(_montage([original, attack, blown_up])))
    return path


def fig_min_filter_reveal(data: ExperimentData, out_dir: Path) -> Path:
    """Fig. 4: the minimum filter reveals the embedded target."""
    attack = ImageAnalysis(data.calibration.attacks[0])
    filtered = attack.filtered("minimum", 2)
    path = out_dir / "fig04_min_filter_reveal.png"
    write_png(path, as_uint8(_montage([attack.float_image, filtered])))
    return path


def fig_spectrum_pair(data: ExperimentData, out_dir: Path) -> Path:
    """Figs. 6–7: centered spectra and binary spectra, benign vs attack.

    Each image's spectrum is computed once (via the shared analysis
    context) and reused for the binarized panel.
    """
    benign = data.calibration.benign[0]
    attack = data.calibration.attacks[0]
    panels = []
    for image in (benign, attack):
        spectrum = ImageAnalysis(image).log_spectrum()
        binary = binary_spectrum(image, spectrum=spectrum)
        panels.append(_gray_to_rgb(spectrum))
        panels.append(_gray_to_rgb(binary.astype(np.float64) * 255.0))
    path = out_dir / "fig07_spectrum_pair.png"
    write_png(path, as_uint8(_montage(panels)))
    return path


def fig8_threshold_search(data: ExperimentData, out_dir: Path) -> Path:
    """Fig. 8: accuracy vs candidate threshold for the scaling detector."""
    detector = ScalingDetector(data.model_input_shape, algorithm=data.algorithm, metric="mse")
    benign = detector.scores(data.calibration.benign)
    attack = detector.scores(data.calibration.attacks)
    best = detector.calibrate(data.calibration.benign, data.calibration.attacks)
    lo = min(min(benign), min(attack))
    hi = max(max(benign), max(attack))
    xs = np.linspace(lo, hi, 80)
    ys = [
        threshold_accuracy(ThresholdRule(float(x), detector.attack_direction), benign, attack)
        for x in xs
    ]
    chart = line_chart(
        {"ACCURACY": (xs, ys)},
        title="FIG 8 THRESHOLD SEARCH (SCALING MSE)",
        x_label="THRESHOLD",
        y_label="ACC",
        marker=best.value,
    )
    path = out_dir / "fig08_threshold_search.png"
    write_png(path, as_uint8(chart))
    return path


def _score_histogram(
    detector,
    data: ExperimentData,
    *,
    title: str,
    filename: str,
    out_dir: Path,
) -> Path:
    benign = detector.scores(data.calibration.benign)
    attack = detector.scores(data.calibration.attacks)
    rule = detector.calibrate(data.calibration.benign, data.calibration.attacks)
    chart = histogram_chart(
        {"BENIGN": benign, "ATTACK": attack},
        title=title,
        threshold=rule.value,
        x_label=detector.metric.upper(),
    )
    path = out_dir / filename
    write_png(path, as_uint8(chart))
    return path


def fig9_scaling_histograms(data: ExperimentData, out_dir: Path) -> list[Path]:
    """Fig. 9: scaling-detector MSE and SSIM histograms with thresholds."""
    return [
        _score_histogram(
            ScalingDetector(data.model_input_shape, algorithm=data.algorithm, metric="mse"),
            data, title="FIG 9 SCALING MSE", filename="fig09_scaling_hist_mse.png", out_dir=out_dir,
        ),
        _score_histogram(
            ScalingDetector(data.model_input_shape, algorithm=data.algorithm, metric="ssim"),
            data, title="FIG 9 SCALING SSIM", filename="fig09_scaling_hist_ssim.png", out_dir=out_dir,
        ),
    ]


def fig11_filtering_histograms(data: ExperimentData, out_dir: Path) -> list[Path]:
    """Fig. 11: filtering-detector MSE and SSIM histograms with thresholds."""
    return [
        _score_histogram(
            FilteringDetector(metric="mse"),
            data, title="FIG 11 FILTERING MSE", filename="fig11_filtering_hist_mse.png", out_dir=out_dir,
        ),
        _score_histogram(
            FilteringDetector(metric="ssim"),
            data, title="FIG 11 FILTERING SSIM", filename="fig11_filtering_hist_ssim.png", out_dir=out_dir,
        ),
    ]


def fig13_csp_bars(data: ExperimentData, out_dir: Path) -> Path:
    """Fig. 13: fraction of images at each CSP count, benign vs attack."""
    detector = SteganalysisDetector()
    benign = np.asarray(detector.scores(data.calibration.benign))
    attack = np.asarray(detector.scores(data.calibration.attacks))
    bars = {
        "B=1": float(np.mean(benign == 1)),
        "B>1": float(np.mean(benign > 1)),
        "A=1": float(np.mean(attack == 1)),
        "A>1": float(np.mean(attack > 1)),
    }
    chart = bar_chart(bars, title="FIG 13 CSP COUNTS (B=BENIGN A=ATTACK)", y_label="FRAC")
    path = out_dir / "fig13_csp_bars.png"
    write_png(path, as_uint8(chart))
    return path


def fig_vulnerability_map(data: ExperimentData, out_dir: Path) -> Path:
    """Bonus panel: the attack surface itself, as a heat image.

    White = source pixels the scaler reads (where attacks must live),
    black = pixels it ignores. Makes the coefficient-sparsity story of
    DESIGN.md §5 visible at a glance.
    """
    from repro.attacks.analysis import vulnerability_map

    heat = vulnerability_map(data.source_shape, data.model_input_shape, data.algorithm)
    peak = heat.max() or 1.0
    panel = _gray_to_rgb(heat / peak * 255.0)
    path = out_dir / "fig_vulnerability_map.png"
    write_png(path, as_uint8(panel))
    return path


def fig15_psnr_histograms(data: ExperimentData, out_dir: Path) -> list[Path]:
    """Appendix Figs. 15–16: PSNR histograms overlap for both methods."""
    from repro.imaging.metrics import psnr

    paths = []
    figures = {
        "fig15_psnr_hist_scaling.png": ImageAnalysis.round_trip_key(
            data.model_input_shape, data.algorithm
        ),
        "fig16_psnr_hist_filtering.png": ImageAnalysis.filtered_key("minimum", 2),
    }

    def psnr_scores(images) -> dict[str, list[float]]:
        # One shared context per image serves both figures' references.
        scores: dict[str, list[float]] = {name: [] for name in figures}
        for img in images:
            analysis = ImageAnalysis(img)
            for name, key in figures.items():
                scores[name].append(psnr(img, analysis.get(key)))
        return scores

    benign_scores = psnr_scores(data.calibration.benign)
    attack_scores = psnr_scores(data.calibration.attacks)
    for name in figures:
        benign = benign_scores[name]
        attack = attack_scores[name]
        chart = histogram_chart(
            {"BENIGN": benign, "ATTACK": attack},
            title=name.split(".")[0].replace("_", " ").upper(),
            x_label="PSNR DB",
        )
        path = out_dir / name
        write_png(path, as_uint8(chart))
        paths.append(path)
    return paths


def render_all_figures(data: ExperimentData, out_dir: str | Path) -> list[Path]:
    """Render every paper figure; returns the written paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = [
        fig_attack_example(data, out),
        fig_min_filter_reveal(data, out),
        fig_spectrum_pair(data, out),
        fig8_threshold_search(data, out),
        *fig9_scaling_histograms(data, out),
        *fig11_filtering_histograms(data, out),
        fig13_csp_bars(data, out),
        *fig15_psnr_histograms(data, out),
        fig_vulnerability_map(data, out),
    ]
    return paths
