"""Parameter-sensitivity sweeps for the detectors.

Two questions the tables don't answer:

* **Why the minimum filter?** The paper picks it visually (Fig. 4 shows it
  reveals the target where median/maximum don't). :func:`sweep_filter_choice`
  makes that quantitative: separation AUC per (filter, metric) pair.
* **How sensitive is the steganalysis extractor to its knobs?** Our CSP
  implementation adds a prominence test to the paper's recipe (see
  EXPERIMENTS.md "known deviations"); :func:`sweep_csp_parameters` maps
  benign FRR and attack recall across the (brightness, prominence) grid so
  the chosen operating point is visibly robust, not a lucky pick.

Both return :class:`~repro.eval.experiments.ExperimentResult` rows and are
exercised by ``benchmarks/bench_sweeps.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.filtering_detector import FilteringDetector
from repro.core.steganalysis_detector import SteganalysisDetector
from repro.core.thresholds import auc
from repro.eval.data import ExperimentData
from repro.eval.experiments import ExperimentResult
from repro.eval.registry import experiment
from repro.eval.tables import format_percent

__all__ = ["sweep_filter_choice", "sweep_csp_parameters"]


@experiment(
    "SW1",
    title="Filter choice for the filtering method (paper Fig. 4, quantified)",
    order=210,
    in_report=False,
    kind="sweep",
)
def sweep_filter_choice(data: ExperimentData, *, n_images: int = 30) -> ExperimentResult:
    """AUC of the filtering method for every (filter, metric) combination.

    Reproduces the paper's Fig. 4 insight quantitatively: the minimum
    filter separates benign from attack images best, because the injected
    pixels the attack needs are extreme values that window-minima expose,
    while median filtering averages them away into both populations.
    """
    n = min(n_images, data.n_calibration)
    benign = [np.asarray(img, dtype=np.float64) for img in data.calibration.benign[:n]]
    attacks = data.calibration.attacks[:n]
    # Full-strength attacks saturate every filter's AUC at 1.0, so the
    # discriminating regime is a *weakened* attacker (40% perturbation) —
    # the hard case where the filter choice actually matters.
    weakened = [b + 0.4 * (a - b) for b, a in zip(benign, attacks)]
    rows = []
    for filter_name in ("minimum", "median", "maximum", "uniform"):
        for metric in ("mse", "ssim"):
            size = 2 if filter_name in ("minimum", "maximum") else 3
            detector = FilteringDetector(
                filter_name=filter_name, filter_size=size, metric=metric
            )
            benign_scores = detector.scores(benign)
            full = auc(
                benign_scores, detector.scores(attacks), direction=detector.attack_direction
            )
            weak = auc(
                benign_scores, detector.scores(weakened), direction=detector.attack_direction
            )
            rows.append(
                {
                    "filter": f"{filter_name} {size}x{size}",
                    "metric": metric.upper(),
                    "AUC (full attack)": f"{full:.3f}",
                    "AUC (weakened 0.4)": f"{weak:.3f}",
                }
            )
    return ExperimentResult(
        experiment_id="SW1",
        title="Filter choice for the filtering method (paper Fig. 4, quantified)",
        rows=rows,
        paper_reference=[
            {"claim": "the minimum filter reveals the target image compared with the other filters"},
        ],
        notes=(
            "Honest finding: for *detection AUC* the filter choice barely "
            "matters — every order-statistic filter separates full-strength "
            "attacks (AUC ~1.0) and all degrade similarly against weakened "
            "ones. The paper's preference for the minimum filter is about "
            "visually *revealing* the hidden target (its Fig. 4), which the "
            "rendered fig04_min_filter_reveal.png reproduces; as a detector "
            "component, min/median/max are interchangeable on our corpora."
        ),
    )


@experiment(
    "SW2",
    title="Steganalysis extractor sensitivity (brightness x prominence)",
    order=220,
    in_report=False,
    kind="sweep",
)
def sweep_csp_parameters(data: ExperimentData, *, n_images: int = 30) -> ExperimentResult:
    """Benign FRR and attack recall across the CSP extractor's grid.

    Sweeps the two knobs our implementation depends on — the normalized
    brightness threshold and the peak-prominence margin — and reports the
    operating characteristics of each combination with the fixed CSP ≥ 2
    rule. A broad plateau of good settings means the reproduction's
    defaults are robust, not tuned to the corpus.
    """
    n = min(n_images, data.n_calibration)
    benign = data.calibration.benign[:n]
    attacks = data.calibration.attacks[:n]
    rows = []
    for brightness in (150.0, 160.0, 170.0):
        for prominence in (25.0, 35.0, 45.0):
            detector = SteganalysisDetector(
                brightness_threshold=brightness, min_prominence=prominence
            )
            benign_flags = [detector.is_attack(img) for img in benign]
            attack_flags = [detector.is_attack(img) for img in attacks]
            rows.append(
                {
                    "brightness": int(brightness),
                    "prominence": int(prominence),
                    "benign FRR": format_percent(float(np.mean(benign_flags))),
                    "attack recall": format_percent(float(np.mean(attack_flags))),
                    "default": "<--" if (brightness, prominence) == (160.0, 35.0) else "",
                }
            )
    return ExperimentResult(
        experiment_id="SW2",
        title="Steganalysis extractor sensitivity (brightness x prominence)",
        rows=rows,
        paper_reference=[
            {"claim": "the paper's CSP recipe has implicit OpenCV-era constants; this maps our explicit equivalents"},
        ],
        notes=(
            "Tightening either knob trades recall for FRR smoothly; the "
            "default sits on the plateau rather than a knife edge."
        ),
    )
