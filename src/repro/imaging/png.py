"""Minimal PNG codec built on stdlib ``zlib`` only.

Neither PIL nor OpenCV is a dependency of this library, so the CLI and the
examples need their own way to read and write real image files. This codec
supports the subset of PNG that matters for the detection pipeline:

* 8-bit grayscale (color type 0), RGB (2), grayscale+alpha (4), RGBA (6)
* all five scanline filters on decode (None/Sub/Up/Average/Paeth)
* non-interlaced images only (interlaced files raise :class:`CodecError`)
* encode with per-scanline filter 0 (None) — simple and universally readable

The implementation follows the PNG specification (RFC 2083) directly.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

import numpy as np

from repro.errors import CodecError
from repro.imaging.image import as_uint8, ensure_image

__all__ = ["decode_png", "encode_png", "read_png", "write_png"]

_SIGNATURE = b"\x89PNG\r\n\x1a\n"

#: PNG color type -> number of samples per pixel.
_CHANNELS = {0: 1, 2: 3, 4: 2, 6: 4}


def _iter_chunks(data: bytes):
    offset = len(_SIGNATURE)
    while offset < len(data):
        if offset + 8 > len(data):
            raise CodecError("truncated PNG chunk header")
        length, ctype = struct.unpack(">I4s", data[offset : offset + 8])
        start = offset + 8
        end = start + length
        if end + 4 > len(data):
            raise CodecError(f"truncated PNG chunk {ctype!r}")
        payload = data[start:end]
        (stored_crc,) = struct.unpack(">I", data[end : end + 4])
        if zlib.crc32(ctype + payload) & 0xFFFFFFFF != stored_crc:
            # Without this check a flipped CRC byte would decode silently;
            # network-facing callers rely on "any corruption raises".
            raise CodecError(f"CRC mismatch in PNG chunk {ctype!r}")
        yield ctype, payload
        offset = end + 4


def _paeth(a: int, b: int, c: int) -> int:
    p = a + b - c
    pa, pb, pc = abs(p - a), abs(p - b), abs(p - c)
    if pa <= pb and pa <= pc:
        return a
    if pb <= pc:
        return b
    return c


def _unfilter(raw: bytes, height: int, width: int, channels: int) -> np.ndarray:
    """Undo PNG scanline filtering; returns (H, W*channels) uint8."""
    stride = width * channels
    expected = height * (stride + 1)
    if len(raw) != expected:
        raise CodecError(
            f"decompressed size {len(raw)} != expected {expected} "
            f"(interlaced or corrupt PNG?)"
        )
    out = np.zeros((height, stride), dtype=np.uint8)
    pos = 0
    prev = np.zeros(stride, dtype=np.int64)
    for row in range(height):
        filter_type = raw[pos]
        pos += 1
        line = np.frombuffer(raw, dtype=np.uint8, count=stride, offset=pos).astype(np.int64)
        pos += stride
        if filter_type == 0:  # None
            recon = line
        elif filter_type == 1:  # Sub
            recon = line.copy()
            for i in range(channels, stride):
                recon[i] = (recon[i] + recon[i - channels]) & 0xFF
        elif filter_type == 2:  # Up
            recon = (line + prev) & 0xFF
        elif filter_type == 3:  # Average
            recon = line.copy()
            for i in range(stride):
                left = recon[i - channels] if i >= channels else 0
                recon[i] = (recon[i] + ((left + prev[i]) >> 1)) & 0xFF
        elif filter_type == 4:  # Paeth
            recon = line.copy()
            for i in range(stride):
                left = recon[i - channels] if i >= channels else 0
                up_left = prev[i - channels] if i >= channels else 0
                recon[i] = (recon[i] + _paeth(int(left), int(prev[i]), int(up_left))) & 0xFF
        else:
            raise CodecError(f"unknown PNG filter type {filter_type}")
        out[row] = recon.astype(np.uint8)
        prev = recon
    return out


def read_png(path: str | Path) -> np.ndarray:
    """Decode a PNG file into a uint8 array (``(H, W)`` or ``(H, W, C)``)."""
    return decode_png(Path(path).read_bytes(), origin=str(path))


def decode_png(data: bytes, *, origin: str = "<bytes>") -> np.ndarray:
    """Decode in-memory PNG *data* (``(H, W)`` or ``(H, W, C)`` uint8).

    *origin* labels error messages — a filename for :func:`read_png`, a
    request id for the detection server's raw-body uploads.
    """
    path = origin
    if not data.startswith(_SIGNATURE):
        raise CodecError(f"{path}: not a PNG file")
    header: tuple[int, int, int, int] | None = None
    idat = bytearray()
    palette: np.ndarray | None = None
    for ctype, payload in _iter_chunks(data):
        if ctype == b"IHDR":
            width, height, bit_depth, color_type, _, _, interlace = struct.unpack(
                ">IIBBBBB", payload
            )
            if bit_depth != 8:
                raise CodecError(f"{path}: only 8-bit PNGs supported, got {bit_depth}-bit")
            if interlace != 0:
                raise CodecError(f"{path}: interlaced PNGs are not supported")
            if color_type not in _CHANNELS and color_type != 3:
                raise CodecError(f"{path}: unsupported color type {color_type}")
            header = (width, height, bit_depth, color_type)
        elif ctype == b"PLTE":
            if len(payload) % 3:
                raise CodecError(f"{path}: malformed palette")
            palette = np.frombuffer(payload, dtype=np.uint8).reshape(-1, 3)
        elif ctype == b"IDAT":
            idat.extend(payload)
        elif ctype == b"IEND":
            break
    if header is None:
        raise CodecError(f"{path}: missing IHDR chunk")
    if not idat:
        raise CodecError(f"{path}: missing IDAT data")
    width, height, _, color_type = header
    channels = 1 if color_type == 3 else _CHANNELS[color_type]
    try:
        raw = zlib.decompress(bytes(idat))
    except zlib.error as exc:
        raise CodecError(f"{path}: corrupt PNG stream: {exc}") from exc
    flat = _unfilter(raw, height, width, channels)
    if color_type == 3:
        if palette is None:
            raise CodecError(f"{path}: paletted PNG without PLTE chunk")
        return palette[flat.reshape(height, width)]
    image = flat.reshape(height, width, channels)
    if channels == 1:
        return image[:, :, 0]
    if color_type == 4:
        # Gray+alpha is outside the library's image model; keep the luma.
        return image[:, :, 0]
    return image


def write_png(path: str | Path, image: np.ndarray) -> None:
    """Encode a uint8 (or float 0–255) array as a PNG file."""
    Path(path).write_bytes(encode_png(image))


def encode_png(image: np.ndarray) -> bytes:
    """Encode a uint8 (or float 0–255) array as in-memory PNG bytes."""
    ensure_image(image)
    pixels = as_uint8(image)
    if pixels.ndim == 2:
        pixels = pixels[:, :, None]
    height, width, channels = pixels.shape
    color_type = {1: 0, 3: 2, 4: 6}.get(channels)
    if color_type is None:
        raise CodecError(f"cannot encode {channels}-channel image as PNG")

    def chunk(ctype: bytes, payload: bytes) -> bytes:
        crc = zlib.crc32(ctype + payload) & 0xFFFFFFFF
        return struct.pack(">I", len(payload)) + ctype + payload + struct.pack(">I", crc)

    ihdr = struct.pack(">IIBBBBB", width, height, 8, color_type, 0, 0, 0)
    # Filter 0 on every scanline: prepend a zero byte per row.
    rows = np.concatenate(
        [np.zeros((height, 1), dtype=np.uint8), pixels.reshape(height, -1)], axis=1
    )
    idat = zlib.compress(rows.tobytes(), level=6)
    return _SIGNATURE + chunk(b"IHDR", ihdr) + chunk(b"IDAT", idat) + chunk(b"IEND", b"")
