"""1-D interpolation kernels used to build scaling coefficient matrices.

Each kernel is a function ``k(t)`` of the signed distance ``t`` between the
sampling position and a source pixel center, together with a fixed *support*
(half-width). The scaling code samples the kernel at the source pixels inside
the support window and normalizes the weights to sum to one — exactly how
OpenCV's ``resize`` computes its per-row coefficient tables.

Crucially, for the non-area kernels the support does **not** grow when
downscaling (no anti-aliasing). A bilinear 8× downscale therefore reads only
2 of every 8 source pixels per axis; the other 6 have zero weight. That
sparse dependence is the vulnerability image-scaling attacks exploit, so we
reproduce it faithfully rather than "fixing" it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ScalingError

__all__ = ["Kernel", "get_kernel", "KERNELS", "NEAREST", "BILINEAR", "BICUBIC", "LANCZOS4", "AREA"]


@dataclass(frozen=True)
class Kernel:
    """An interpolation kernel: a weight function plus its half-width.

    ``support`` is the half-width of the window in source-pixel units; the
    weight function is evaluated at distances ``|t| < support`` and treated
    as zero outside.
    """

    name: str
    support: float
    weight: Callable[[np.ndarray], np.ndarray]

    def __call__(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        w = self.weight(np.abs(t))
        return np.where(np.abs(t) < self.support, w, 0.0)


def _box(t: np.ndarray) -> np.ndarray:
    return np.ones_like(t)


def _triangle(t: np.ndarray) -> np.ndarray:
    return np.maximum(0.0, 1.0 - t)


def _cubic(t: np.ndarray, a: float = -0.75) -> np.ndarray:
    """Keys cubic convolution kernel with OpenCV's a = -0.75."""
    t = np.abs(t)
    inner = (a + 2.0) * t**3 - (a + 3.0) * t**2 + 1.0
    outer = a * t**3 - 5.0 * a * t**2 + 8.0 * a * t - 4.0 * a
    return np.where(t <= 1.0, inner, np.where(t < 2.0, outer, 0.0))


def _lanczos(t: np.ndarray, lobes: int = 4) -> np.ndarray:
    t = np.abs(t)
    # sinc(x) in numpy is sin(pi x)/(pi x), handling t == 0 exactly.
    return np.sinc(t) * np.sinc(t / lobes)


#: Nearest neighbor — implemented by index rounding, but the kernel form is
#: used for coefficient-matrix construction (a width-1 box).
NEAREST = Kernel("nearest", 0.5, _box)
BILINEAR = Kernel("bilinear", 1.0, _triangle)
BICUBIC = Kernel("bicubic", 2.0, _cubic)
LANCZOS4 = Kernel("lanczos4", 4.0, _lanczos)
#: Area (box) averaging — the anti-aliased, attack-robust algorithm. The
#: coefficient builder widens this kernel's support by the scale ratio.
AREA = Kernel("area", 0.5, _box)

KERNELS: dict[str, Kernel] = {
    k.name: k for k in (NEAREST, BILINEAR, BICUBIC, LANCZOS4, AREA)
}


def get_kernel(name: str) -> Kernel:
    """Look up a kernel by name; raises :class:`ScalingError` if unknown."""
    try:
        return KERNELS[name]
    except KeyError:
        known = ", ".join(sorted(KERNELS))
        raise ScalingError(f"unknown interpolation kernel {name!r}; known: {known}") from None
