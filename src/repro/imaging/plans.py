"""Precompiled scoring plans: the hot-path compilation layer.

Scoring an image is dominated by two costs: applying the scaling
operators (four dense matmuls per round trip) and the steganalysis
spectrum (a full complex FFT plus per-call mask/grid rebuilds). This
module precompiles both, once per configuration, and caches the results:

* :class:`ScoringPlan` — per ``(src_shape, dst_shape, algorithm,
  upscale_algorithm)``, the exact operator quadruple *and* the fused
  round-trip pair ``(Lu@Ld, Rd@Ru)``. The 1-D coefficient matrices have
  bounded kernel support, so the fused products stay narrow-banded and
  are stored in CSR-style band form (per-row data + offsets). A
  deterministic compile-time cost model picks the cheaper application
  strategy — fused banded contraction or the exact stacked matmuls — so
  two processes given the same key always produce the same floats.
* :class:`SpectrumGeometry` — per ``(h, w, lowpass_radius_fraction)``,
  everything the CSP metric rederives per call today: the radial
  low-pass mask, the radial-distance grid, the Hermitian index map from
  centered full-spectrum coordinates into the ``rfft2`` half-spectrum,
  the low-pass disk index list, and the radius-sorted grid used to
  answer annulus-median queries with two ``searchsorted`` calls.
  :func:`csp_count_fast` uses it to score the CSP metric from a real
  FFT (half the transform work) without materializing the normalized
  spectrum image.

Both caches are thread-safe LRUs with the hit/miss stats contract of the
operator cache (``size``/``maxsize``/``hits``/``misses``/``hit_rate``),
surfaced through ``pipeline.stats`` and ``/metrics``.

Numerics contract
-----------------
Plan-mode scores are parity-tested against the exact path at ≤1e-9
relative on MSE/SSIM; CSP counts are exactly equal on the test corpus.
The differences come only from summation order (banded contraction,
``rfft2`` magnitudes); they are zero whenever the cost model selects the
exact strategy. :func:`set_exact_mode` (or the :func:`exact_mode`
context manager) restores today's bit-for-bit path end to end;
:func:`scoring_mode` reports which mode is active so calibration
artifacts can record their provenance and never mix the two.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ImageError, ScalingError
from repro.imaging.contours import region_stats_from_points
from repro.imaging.coefficients import scaling_operators

try:  # SciPy's pocketfft is bit-identical to NumPy's and ~2x faster.
    import scipy.fft as _sfft
except ImportError:  # pragma: no cover - scipy is a declared dependency
    _sfft = None

try:  # C-speed connected components for the sparse bright-point stats.
    import scipy.ndimage as _ndimage
except ImportError:  # pragma: no cover - scipy is a declared dependency
    _ndimage = None

_STRUCTURE_8 = np.ones((3, 3), dtype=np.int32)

__all__ = [
    "PlanCache",
    "ScoringPlan",
    "SpectrumGeometry",
    "get_scoring_plan",
    "get_spectrum_geometry",
    "plan_cache_stats",
    "plan_cache_keys",
    "geometry_cache_stats",
    "geometry_cache_keys",
    "clear_plan_caches",
    "csp_count_fast",
    "spectrum_magnitude_half",
    "spectrum_magnitude_halves",
    "set_exact_mode",
    "exact_mode_enabled",
    "exact_mode",
    "scoring_mode",
]


# -- scoring mode -----------------------------------------------------------

_EXACT = False


def set_exact_mode(enabled: bool) -> None:
    """Select the bit-for-bit legacy path (True) or plan mode (False).

    Process-wide. :class:`~repro.core.analysis.ImageAnalysis` captures the
    mode at construction, so contexts created before a switch stay
    internally consistent.
    """
    global _EXACT
    _EXACT = bool(enabled)


def exact_mode_enabled() -> bool:
    """Whether the bit-for-bit exact path is active."""
    return _EXACT


@contextlib.contextmanager
def exact_mode(enabled: bool = True) -> Iterator[None]:
    """Temporarily force exact (or plan) scoring for the enclosed block."""
    previous = _EXACT
    set_exact_mode(enabled)
    try:
        yield
    finally:
        set_exact_mode(previous)


def scoring_mode() -> str:
    """``"exact"`` or ``"plan"`` — recorded in calibration artifacts."""
    return "exact" if _EXACT else "plan"


# -- the cache --------------------------------------------------------------


class PlanCache:
    """Thread-safe LRU mapping hashable keys to compiled plan objects.

    Generalizes the old scaling ``OperatorCache`` (which is now a
    subclass): same locking discipline — the builder runs *outside* the
    lock because construction is pure and idempotent, so a rare duplicate
    build beats serializing every miss — and the same ``stats()``
    contract (``size``/``maxsize``/``hits``/``misses``/``hit_rate``).
    """

    def __init__(self, builder: Callable[[tuple], object], maxsize: int = 64) -> None:
        if maxsize <= 0:
            raise ScalingError(f"plan cache maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._builder = builder
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def lookup(self, key: tuple) -> object:
        """The compiled plan for *key*, built on first request."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return plan
            self._misses += 1
        plan = self._builder(key)
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return plan

    def keys(self) -> list[tuple]:
        """Current cache keys, least recently used first (for pre-warming)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict[str, float | int]:
        """Hit/miss counters and the current fill, for dashboards."""
        with self._lock:
            hits, misses, size = self._hits, self._misses, len(self._entries)
        total = hits + misses
        return {
            "size": size,
            "maxsize": self.maxsize,
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0


# -- fused round-trip operators ---------------------------------------------

#: Empirical slowdown of a banded gather+einsum contraction relative to a
#: dense GEMM multiply-add, used by the compile-time strategy choice. The
#: model must stay deterministic (no runtime timing): cached experiment
#: rows are required to be byte-identical across runs and hosts.
_FUSED_OVERHEAD = 6


def _band_form(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CSR-style band storage ``(data, offsets)`` of a narrow-banded matrix.

    Row ``i`` of *matrix* equals ``data[i]`` scattered at columns
    ``offsets[i] .. offsets[i] + width - 1`` (one shared width, the max
    per-row nonzero span; offsets are clamped so the window stays in
    bounds and padded positions hold exact zeros).
    """
    n_out, n_in = matrix.shape
    nonzero = matrix != 0.0
    has = nonzero.any(axis=1)
    first = np.where(has, nonzero.argmax(axis=1), 0)
    last = np.where(has, n_in - 1 - nonzero[:, ::-1].argmax(axis=1), 0)
    width = max(int((last - first + 1).max()), 1)
    offsets = np.minimum(first, n_in - width).astype(np.int64)
    columns = offsets[:, None] + np.arange(width)
    data = np.take_along_axis(matrix, columns, axis=1)
    return np.ascontiguousarray(data), offsets


def _apply_band_rows(data: np.ndarray, offsets: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``A @ x`` over the last two axes, with ``A`` in band form."""
    width = data.shape[1]
    columns = offsets[:, None] + np.arange(width)
    return np.einsum("ib,...ibw->...iw", data, x[..., columns, :])


def _apply_band_cols(data: np.ndarray, offsets: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``x @ B`` over the last two axes, with ``B.T`` in band form."""
    width = data.shape[1]
    columns = offsets[:, None] + np.arange(width)
    return np.einsum("...jb,jb->...j", x[..., columns], data)


@dataclass(frozen=True)
class ScoringPlan:
    """Compiled round-trip operators for one scaling configuration.

    Holds the exact operator quadruple (shared, read-only arrays from the
    coefficient cache) plus — when the cost model selects it — the fused
    pair ``row_op = Lu @ Ld`` and ``col_op = Rd @ Ru`` in band form.
    :meth:`round_trip` applies the chosen strategy; :meth:`round_trip_exact`
    is always the bit-for-bit stacked-matmul path.
    """

    src_shape: tuple[int, int]
    dst_shape: tuple[int, int]
    algorithm: str
    upscale_algorithm: str
    left_down: np.ndarray = field(repr=False)
    right_down: np.ndarray = field(repr=False)
    left_up: np.ndarray = field(repr=False)
    right_up: np.ndarray = field(repr=False)
    fused: bool
    row_band: np.ndarray | None = field(repr=False)
    row_offsets: np.ndarray | None = field(repr=False)
    col_band: np.ndarray | None = field(repr=False)
    col_offsets: np.ndarray | None = field(repr=False)

    def _round_trip_stacked(self, planes: np.ndarray) -> np.ndarray:
        """Exact 4-matmul round trip over ``(..., H, W)`` stacked planes."""
        down = np.matmul(np.matmul(self.left_down, planes), self.right_down)
        return np.matmul(np.matmul(self.left_up, down), self.right_up)

    def _round_trip_fused(self, planes: np.ndarray) -> np.ndarray:
        rows = _apply_band_rows(self.row_band, self.row_offsets, planes)
        return _apply_band_cols(self.col_band, self.col_offsets, rows)

    def round_trip_exact(self, float_image: np.ndarray) -> np.ndarray:
        """``up(down(I))`` — bit-identical to the legacy per-channel loop.

        A batched matmul runs one GEMM per 2-D slice, exactly the GEMMs
        the old per-channel loop ran, so stacking channels first changes
        nothing but the Python overhead.
        """
        if float_image.ndim == 2:
            return self._round_trip_stacked(float_image)
        planes = np.ascontiguousarray(float_image.transpose(2, 0, 1))
        return np.ascontiguousarray(self._round_trip_stacked(planes).transpose(1, 2, 0))

    def round_trip(self, float_image: np.ndarray) -> np.ndarray:
        """``up(down(I))`` via the compiled strategy (plan mode)."""
        if not self.fused:
            return self.round_trip_exact(float_image)
        if float_image.ndim == 2:
            return self._round_trip_fused(float_image)
        planes = np.ascontiguousarray(float_image.transpose(2, 0, 1))
        return np.ascontiguousarray(self._round_trip_fused(planes).transpose(1, 2, 0))

    def round_trip_batch(self, stack: np.ndarray, *, exact: bool = False) -> np.ndarray:
        """Round-trip a ``(N, H, W)`` or ``(N, H, W, C)`` stack at once.

        With ``exact=True`` (or when the plan is not fused) the result is
        bit-identical to calling :meth:`round_trip_exact` per image.
        """
        apply = (
            self._round_trip_stacked
            if exact or not self.fused
            else self._round_trip_fused
        )
        if stack.ndim == 3:
            return apply(stack)
        planes = np.ascontiguousarray(stack.transpose(0, 3, 1, 2))
        return np.ascontiguousarray(apply(planes).transpose(0, 2, 3, 1))


def _build_scoring_plan(key: tuple) -> ScoringPlan:
    src_shape, dst_shape, algorithm, upscale_algorithm = key
    left_down, right_down = scaling_operators(src_shape, dst_shape, algorithm)
    left_up, right_up = scaling_operators(dst_shape, src_shape, upscale_algorithm)
    row_op = left_up @ left_down
    col_op = right_down @ right_up
    row_band, row_offsets = _band_form(row_op)
    col_band, col_offsets = _band_form(np.ascontiguousarray(col_op.T))
    (h, w), (dh, dw) = src_shape, dst_shape
    exact_madds = dh * h * w + dh * w * dw + h * dh * dw + h * dw * w
    fused_madds = _FUSED_OVERHEAD * h * w * (row_band.shape[1] + col_band.shape[1])
    fused = fused_madds < exact_madds
    for array in (row_band, row_offsets, col_band, col_offsets):
        array.setflags(write=False)
    return ScoringPlan(
        src_shape=src_shape,
        dst_shape=dst_shape,
        algorithm=algorithm,
        upscale_algorithm=upscale_algorithm,
        left_down=left_down,
        right_down=right_down,
        left_up=left_up,
        right_up=right_up,
        fused=fused,
        row_band=row_band if fused else None,
        row_offsets=row_offsets if fused else None,
        col_band=col_band if fused else None,
        col_offsets=col_offsets if fused else None,
    )


_PLAN_CACHE = PlanCache(_build_scoring_plan, maxsize=32)


def get_scoring_plan(
    src_shape: tuple[int, int],
    dst_shape: tuple[int, int],
    algorithm: str = "bilinear",
    upscale_algorithm: str | None = None,
) -> ScoringPlan:
    """The compiled :class:`ScoringPlan` for one round-trip configuration."""
    key = (
        (int(src_shape[0]), int(src_shape[1])),
        (int(dst_shape[0]), int(dst_shape[1])),
        algorithm,
        upscale_algorithm or algorithm,
    )
    return _PLAN_CACHE.lookup(key)


# -- spectrum geometry ------------------------------------------------------


@dataclass(frozen=True)
class SpectrumGeometry:
    """Per-shape constants of the CSP metric (all read-only arrays).

    Coordinates are centered (``fftshift``) full-spectrum coordinates;
    ``herm`` maps each of them to the flat index of the corresponding
    ``rfft2`` half-spectrum bin via Hermitian symmetry, which is what
    lets the fast path run on half the FFT output.
    """

    shape: tuple[int, int]
    radius: float
    mask: np.ndarray = field(repr=False)  # (h, w) bool low-pass disk
    radial: np.ndarray = field(repr=False)  # (h, w) distance from center
    herm: np.ndarray = field(repr=False)  # (h, w) int64 half-spectrum flat index
    disk_flat: np.ndarray = field(repr=False)  # flat full indices, mask True
    disk_rows: np.ndarray = field(repr=False)  # row coordinate per disk point
    disk_cols: np.ndarray = field(repr=False)  # col coordinate per disk point
    disk_radial: np.ndarray = field(repr=False)  # center distance per disk point
    disk_herm: np.ndarray = field(repr=False)  # half indices of disk points
    radial_sorted: np.ndarray = field(repr=False)  # sorted radial.ravel()
    herm_by_radial: np.ndarray = field(repr=False)  # half indices in that order


def _build_spectrum_geometry(key: tuple) -> SpectrumGeometry:
    h, w, lowpass_radius_fraction = key
    radius = lowpass_radius_fraction * (min(h, w) / 2.0)
    if radius <= 0:
        raise ImageError(f"low-pass radius must be positive, got {radius}")
    rows = np.arange(h) - h // 2
    cols = np.arange(w) - w // 2
    dist_sq = rows[:, None] ** 2 + cols[None, :] ** 2
    mask = dist_sq <= radius * radius
    radial = np.hypot(rows[:, None], cols[None, :])

    # Hermitian map: centered coordinate (i, j) is unshifted frequency
    # (u, v) = ((i - h//2) % h, (j - w//2) % w); bins with v >= w//2 + 1
    # mirror onto ((h - u) % h, w - v) with equal magnitude.
    half_w = w // 2 + 1
    u = (np.arange(h)[:, None] - h // 2) % h
    v = (np.arange(w)[None, :] - w // 2) % w
    u = np.broadcast_to(u, (h, w)).copy()
    v = np.broadcast_to(v, (h, w)).copy()
    mirror = v >= half_w
    u[mirror] = (h - u[mirror]) % h
    v[mirror] = w - v[mirror]
    herm = (u * half_w + v).astype(np.int64)

    disk_flat = np.nonzero(mask.ravel())[0]
    disk_rows = disk_flat // w
    disk_cols = disk_flat - disk_rows * w
    disk_radial = radial.ravel()[disk_flat]
    disk_herm = herm.ravel()[disk_flat]
    order = np.argsort(radial.ravel(), kind="stable")
    radial_sorted = radial.ravel()[order]
    herm_by_radial = herm.ravel()[order]
    arrays = (
        mask,
        radial,
        herm,
        disk_flat,
        disk_rows,
        disk_cols,
        disk_radial,
        disk_herm,
        radial_sorted,
        herm_by_radial,
    )
    for array in arrays:
        array.setflags(write=False)
    return SpectrumGeometry((h, w), radius, *arrays)


_GEOMETRY_CACHE = PlanCache(_build_spectrum_geometry, maxsize=16)


def get_spectrum_geometry(
    shape: tuple[int, int], lowpass_radius_fraction: float = 0.5
) -> SpectrumGeometry:
    """The cached :class:`SpectrumGeometry` for one spectrum shape."""
    key = (int(shape[0]), int(shape[1]), float(lowpass_radius_fraction))
    return _GEOMETRY_CACHE.lookup(key)


# -- fast CSP ---------------------------------------------------------------


def spectrum_magnitude_half(gray: np.ndarray) -> np.ndarray:
    """``|rfft2(gray)|`` — the half-spectrum magnitudes of a luma plane."""
    if _sfft is not None:
        return np.abs(_sfft.rfft2(gray))
    return np.abs(np.fft.rfft2(gray))


def spectrum_magnitude_halves(stack: np.ndarray) -> np.ndarray:
    """Batched :func:`spectrum_magnitude_half` over a ``(N, H, W)`` stack."""
    if _sfft is not None:
        return np.abs(_sfft.rfft2(stack, axes=(-2, -1)))
    return np.abs(np.fft.rfft2(stack, axes=(-2, -1)))


def _median_normalized(
    values: np.ndarray, low: float, scale: float
) -> float:
    """``np.median`` of the normalized spectrum over raw magnitude *values*.

    Normalization is strictly monotone in the magnitude, so the median
    element(s) can be selected on the raw values with ``np.partition``
    and only the middle one or two need the log/normalize transform —
    matching ``np.median`` of the fully normalized array bit for bit.
    """
    n = values.shape[0]
    mid = n // 2
    if n % 2:
        value = np.partition(values, mid)[mid]
        return float((np.log1p(value) - low) * scale)
    part = np.partition(values, [mid - 1, mid])
    a = (np.log1p(part[mid - 1]) - low) * scale
    b = (np.log1p(part[mid]) - low) * scale
    return float((a + b) / 2.0)


def csp_count_fast(
    gray: np.ndarray | None = None,
    *,
    magnitude_half: np.ndarray | None = None,
    shape: tuple[int, int] | None = None,
    brightness_threshold: float = 160.0,
    lowpass_radius_fraction: float = 0.5,
    inner_radius_fraction: float = 0.09,
    min_area: int = 2,
    min_prominence: float = 35.0,
) -> int:
    """The CSP count from a real FFT and cached geometry (plan mode).

    Pass either *gray* (a 2-D luma plane) or a precomputed
    *magnitude_half* (``|rfft2|``, from :func:`spectrum_magnitude_halves`
    in batched callers) together with the original *shape*. Agrees with
    :func:`repro.imaging.fourier.csp_count_from_spectrum` on the
    normalized spectrum; counts are exactly equal on the test corpus
    (the only divergence channel is sub-ulp FFT symmetry at exact
    threshold boundaries).
    """
    if magnitude_half is None:
        if gray is None:
            raise ImageError("csp_count_fast needs a luma plane or magnitudes")
        shape = gray.shape
        magnitude_half = spectrum_magnitude_half(gray)
    elif shape is None:
        raise ImageError("magnitude_half requires the original spectrum shape")
    h, w = shape
    geometry = get_spectrum_geometry((h, w), lowpass_radius_fraction)

    flat_magnitude = magnitude_half.ravel()
    low = float(np.log1p(flat_magnitude.min()))
    high = float(np.log1p(flat_magnitude.max()))
    if high - low <= 0:
        return 1  # constant spectrum: empty binary mask, one central point
    scale = 255.0 / (high - low)

    # Brightness threshold, evaluated only at low-pass disk points with
    # the same per-element expression the exact path uses. The
    # normalization is strictly monotone in the magnitude, so inverting
    # it once gives a raw-magnitude cutoff; a relative safety margin
    # far wider than the expression's rounding error makes the raw
    # candidates a superset, and the exact expression then runs only on
    # those few points instead of the whole disk.
    raw_cut = float(np.expm1(brightness_threshold / scale + low)) * (1.0 - 1e-6)
    disk_magnitude = flat_magnitude[geometry.disk_herm]
    candidates = np.nonzero(disk_magnitude >= raw_cut)[0]
    if candidates.size == 0:
        return 1
    values = np.log1p(disk_magnitude[candidates])
    bright = candidates[(values - low) * scale >= brightness_threshold]
    if bright.size == 0:
        return 1
    # All-central shortcut: a centroid is a convex combination of its
    # region's points, so when every bright point sits strictly inside
    # the inner radius (margin covering centroid rounding) no region can
    # pass the distance filter — benign spectra end here, unlabeled.
    inner_radius = inner_radius_fraction * min(h, w)
    if float(geometry.disk_radial[bright].max()) <= inner_radius * (1.0 - 1e-9):
        return 1
    # The bright points inherit the disk's row-major sort, so they can
    # be labeled sparsely — same components, same stats as densely
    # labeling the binary mask, without building one. With scipy the
    # crop around the bright points goes through ndimage's C labeler;
    # its component numbering may differ from the dense labeler's, but
    # the count below is order-invariant and each region's stats are
    # exact either way (integer and half-integer sums in float64).
    bright_rows = geometry.disk_rows[bright]
    bright_cols = geometry.disk_cols[bright]
    bboxes = None
    if _ndimage is not None:
        top = int(bright_rows[0])
        left = int(bright_cols.min())
        local_rows = bright_rows - top
        local_cols = bright_cols - left
        patch = np.zeros(
            (int(bright_rows[-1]) - top + 1, int(bright_cols.max()) - left + 1),
            dtype=bool,
        )
        patch[local_rows, local_cols] = True
        labels, count = _ndimage.label(patch, structure=_STRUCTURE_8)
        point_labels = labels[local_rows, local_cols]
        areas = np.bincount(point_labels, minlength=count + 1)[1:]
        row_sums = np.bincount(
            point_labels, weights=bright_rows, minlength=count + 1
        )[1:]
        col_sums = np.bincount(
            point_labels, weights=bright_cols, minlength=count + 1
        )[1:]
    else:
        areas, row_sums, col_sums, bboxes = region_stats_from_points(
            bright_rows, bright_cols
        )
    distances = np.hypot(row_sums / areas - h // 2, col_sums / areas - w // 2)
    keep = (areas >= min_area) & (distances > inner_radius)
    if not keep.any():
        return 1
    if bboxes is None:
        # Deferred until a region survives the filters: benign spectra
        # almost never get here, and only the peak windows need boxes.
        bboxes = np.empty((count, 4), dtype=np.int64)
        for index, (rows_slice, cols_slice) in enumerate(
            _ndimage.find_objects(labels)
        ):
            bboxes[index] = (
                rows_slice.start + top,
                cols_slice.start + left,
                rows_slice.stop - 1 + top,
                cols_slice.stop - 1 + left,
            )

    outer = 0
    backgrounds: dict[tuple[int, int], float] = {}
    for index in np.nonzero(keep)[0]:
        r0, c0, r1, c1 = bboxes[index]
        window = geometry.herm[r0 : r1 + 1, c0 : c1 + 1]
        peak = (np.log1p(flat_magnitude[window].max()) - low) * scale
        distance = float(distances[index])
        lo = int(
            np.searchsorted(geometry.radial_sorted, distance - 3.0, side="right")
        )
        hi = int(
            np.searchsorted(geometry.radial_sorted, distance + 3.0, side="left")
        )
        # Mirror-symmetric spectrum regions sit at the same radius and
        # share the exact same annulus window, so the median is memoized
        # per (lo, hi) slice.
        background = backgrounds.get((lo, hi))
        if background is None:
            if hi > lo:
                annulus = flat_magnitude[geometry.herm_by_radial[lo:hi]]
                background = _median_normalized(annulus, low, scale)
            else:
                background = 0.0
            backgrounds[lo, hi] = background
        if peak - background >= min_prominence:
            outer += 1
    return 1 + outer


# -- cache surfaces ---------------------------------------------------------


def plan_cache_stats() -> dict[str, float | int]:
    """Hit/miss statistics of the process-wide scoring-plan cache."""
    return _PLAN_CACHE.stats()


def plan_cache_keys() -> list[tuple]:
    """Keys currently compiled — what a worker pre-warms at spawn."""
    return _PLAN_CACHE.keys()


def geometry_cache_stats() -> dict[str, float | int]:
    """Hit/miss statistics of the spectrum-geometry cache."""
    return _GEOMETRY_CACHE.stats()


def geometry_cache_keys() -> list[tuple]:
    """Keys currently in the spectrum-geometry cache."""
    return _GEOMETRY_CACHE.keys()


def clear_plan_caches() -> None:
    """Reset both plan caches (tests and benchmarks)."""
    _PLAN_CACHE.clear()
    _GEOMETRY_CACHE.clear()
