"""Spatial window filters (Method 2 substrate).

Implements the order-statistic filters the paper's filtering detector relies
on — minimum (erosion), median, maximum (dilation) — plus uniform and
Gaussian smoothing used by the adaptive attacks and the reconstruction
defense. All filters:

* operate per channel,
* use reflect padding at the borders,
* accept uint8 or float64 and return float64 on the 0–255 scale.

They are implemented directly with ``numpy`` sliding windows rather than
delegating to ``scipy.ndimage`` so the repository carries its own substrate
(and so behaviour is identical across scipy versions); the test suite
cross-checks them against scipy.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ImageError
from repro.imaging.image import as_float, ensure_image, pad_reflect

__all__ = [
    "minimum_filter",
    "maximum_filter",
    "median_filter",
    "uniform_filter",
    "gaussian_filter",
    "filter_batch",
    "FILTERS",
]


def _sliding_extreme(padded, size: int, axes: tuple[int, int], op) -> np.ndarray:
    """Window min/max over *padded* via separable shifted-slice reduction.

    Min and max over a rectangle factor into a pass per axis, and each
    pass is ``size - 1`` elementwise ``np.minimum``/``np.maximum`` calls
    over shifted views — the same set of elements every window reduction
    visits, so the result is **bit-identical** to reducing size×size
    sliding windows while never materializing them.
    """
    out = padded
    for axis in axes:
        length = out.shape[axis] - size + 1
        index = [slice(None)] * out.ndim
        index[axis] = slice(0, length)
        acc = out[tuple(index)].copy()
        for shift in range(1, size):
            index[axis] = slice(shift, shift + length)
            op(acc, out[tuple(index)], out=acc)
        out = acc
    return out


def _window_reduce(image: np.ndarray, size: int, reducer) -> np.ndarray:
    """Apply ``reducer`` over every size×size spatial window."""
    ensure_image(image)
    if size < 1:
        raise ImageError(f"filter size must be >= 1, got {size}")
    if size == 1:
        return as_float(image)
    img = as_float(image)
    pad_before = (size - 1) // 2
    pad_after = size - 1 - pad_before
    pad = [(pad_before, pad_after), (pad_before, pad_after)]
    if img.ndim == 3:
        pad.append((0, 0))
    padded = np.pad(img, pad, mode="reflect")
    if reducer is np.min or reducer is np.max:
        op = np.minimum if reducer is np.min else np.maximum
        return _sliding_extreme(padded, size, (0, 1), op)
    windows = sliding_window_view(padded, (size, size), axis=(0, 1))
    # windows shape: (H, W[, C], size, size) -> reduce the trailing two axes.
    return reducer(windows, axis=(-2, -1))


def minimum_filter(image: np.ndarray, size: int = 2) -> np.ndarray:
    """Grayscale erosion: each pixel becomes the window minimum.

    The paper selects the minimum filter (default 2×2 window) because the
    bright original pixels dominate an attack image; taking window minima
    strips them and exposes the darker embedded target pixels.
    """
    return _window_reduce(image, size, np.min)


def maximum_filter(image: np.ndarray, size: int = 2) -> np.ndarray:
    """Grayscale dilation: each pixel becomes the window maximum."""
    return _window_reduce(image, size, np.max)


def median_filter(image: np.ndarray, size: int = 3) -> np.ndarray:
    """Each pixel becomes the window median (classic denoising filter)."""
    return _window_reduce(image, size, np.median)


def uniform_filter(image: np.ndarray, size: int = 3) -> np.ndarray:
    """Each pixel becomes the window mean (box blur)."""
    return _window_reduce(image, size, np.mean)


def gaussian_filter(image: np.ndarray, sigma: float, truncate: float = 4.0) -> np.ndarray:
    """Separable Gaussian blur with reflect borders.

    Used by the adaptive attack (to smear the perturbation into low
    frequencies) and by the reconstruction defense baseline.
    """
    ensure_image(image)
    if sigma <= 0:
        return as_float(image)
    radius = max(1, int(truncate * sigma + 0.5))
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (x / sigma) ** 2)
    kernel /= kernel.sum()

    img = as_float(image)
    padded = pad_reflect(img, radius, radius)

    # Convolve rows then columns via sliding windows (separable kernel);
    # sliding_window_view appends the window axis last, so a matmul/tensordot
    # with the kernel contracts it away.
    rows = sliding_window_view(padded, len(kernel), axis=1)
    blurred_rows = rows @ kernel
    cols = sliding_window_view(blurred_rows, len(kernel), axis=0)
    return np.tensordot(cols, kernel, axes=([-1], [0]))


FILTERS = {
    "minimum": minimum_filter,
    "maximum": maximum_filter,
    "median": median_filter,
    "uniform": uniform_filter,
}

#: Window reducer behind each order-statistic filter, for the batch path.
_REDUCERS = {
    "minimum": np.min,
    "maximum": np.max,
    "median": np.median,
    "uniform": np.mean,
}


def filter_batch(stack: np.ndarray, name: str, size: int) -> np.ndarray:
    """Apply one :data:`FILTERS` filter to a stack of same-shaped images.

    *stack* is ``(N, H, W)`` or ``(N, H, W, C)`` float64. The result's
    ``i``-th slice is **bit-identical** to ``FILTERS[name](stack[i], size)``:
    reflect padding never crosses the batch axis and every output element
    reduces the same ``size``×``size`` window with the same reducer — the
    batch path only replaces N python-level passes (pad, window view,
    reduce) with one.
    """
    if name not in _REDUCERS:
        known = ", ".join(sorted(_REDUCERS))
        raise ImageError(f"unknown filter {name!r}; known: {known}")
    if stack.ndim not in (3, 4):
        raise ImageError(
            f"filter_batch expects a (N, H, W[, C]) stack, got shape {stack.shape}"
        )
    if size < 1:
        raise ImageError(f"filter size must be >= 1, got {size}")
    if size == 1:
        return stack.astype(np.float64, copy=True)
    img = stack.astype(np.float64, copy=False)
    pad_before = (size - 1) // 2
    pad_after = size - 1 - pad_before
    pad = [(0, 0), (pad_before, pad_after), (pad_before, pad_after)]
    if img.ndim == 4:
        pad.append((0, 0))
    padded = np.pad(img, pad, mode="reflect")
    reducer = _REDUCERS[name]
    if reducer is np.min or reducer is np.max:
        op = np.minimum if reducer is np.min else np.maximum
        return _sliding_extreme(padded, size, (1, 2), op)
    windows = sliding_window_view(padded, (size, size), axis=(1, 2))
    # windows shape: (N, H, W[, C], size, size) -> reduce the trailing two.
    return _REDUCERS[name](windows, axis=(-2, -1))
