"""JPEG-style lossy compression simulator.

Real-world images usually pass through JPEG on their way to an ML
pipeline, and lossy re-encoding is also a *cheap candidate defense* ("just
recompress uploads — won't that destroy the hidden pixels?"). To study
both questions offline, this module implements the lossy core of JPEG from
scratch:

1. RGB → YCbCr, optional 4:2:0 chroma subsampling,
2. per-8×8-block DCT-II,
3. quantization with the Annex-K luminance/chrominance tables scaled by
   the usual quality-factor rule,
4. dequantization + inverse DCT + upsampling back to RGB.

Entropy coding is omitted (it is lossless and irrelevant to pixel
effects); the output is the exact image a JPEG decoder would produce.
Used by the AB6 re-encoding ablation and available as
``repro.imaging.jpeg.jpeg_roundtrip``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ImageError
from repro.imaging.color import rgb_to_ycbcr, to_rgb, ycbcr_to_rgb
from repro.imaging.image import as_float, ensure_image

__all__ = ["jpeg_roundtrip", "block_dct2", "block_idct2", "quantization_tables"]

# ITU-T T.81 Annex K reference quantization tables.
_LUMA_TABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)
_CHROMA_TABLE = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.float64,
)


@lru_cache(maxsize=1)
def _dct_matrix() -> np.ndarray:
    """The 8x8 orthonormal DCT-II basis matrix ``C`` (rows = frequencies)."""
    n = 8
    k = np.arange(n)[:, None]
    x = np.arange(n)[None, :]
    matrix = np.cos((2 * x + 1) * k * np.pi / (2 * n))
    matrix[0] *= 1.0 / np.sqrt(2.0)
    return matrix * np.sqrt(2.0 / n)


def block_dct2(blocks: np.ndarray) -> np.ndarray:
    """DCT-II of stacked 8x8 blocks, shape ``(..., 8, 8)``."""
    c = _dct_matrix()
    return c @ blocks @ c.T


def block_idct2(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`block_dct2` (the DCT matrix is orthonormal)."""
    c = _dct_matrix()
    return c.T @ coefficients @ c


def quantization_tables(quality: int) -> tuple[np.ndarray, np.ndarray]:
    """(luma, chroma) quantization tables for a 1–100 quality factor.

    Uses the libjpeg scaling convention: quality 50 is the reference table,
    higher qualities shrink the steps, lower qualities grow them.
    """
    if not 1 <= quality <= 100:
        raise ImageError(f"JPEG quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    def scaled(table: np.ndarray) -> np.ndarray:
        q = np.floor((table * scale + 50.0) / 100.0)
        return np.clip(q, 1.0, 255.0)
    return scaled(_LUMA_TABLE), scaled(_CHROMA_TABLE)


def _pad_to_blocks(plane: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
    h, w = plane.shape
    pad_h = (-h) % 8
    pad_w = (-w) % 8
    padded = np.pad(plane, ((0, pad_h), (0, pad_w)), mode="edge")
    return padded, (h, w)


def _compress_plane(plane: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantize one channel plane through the block DCT and back."""
    padded, (h, w) = _pad_to_blocks(plane - 128.0)
    ph, pw = padded.shape
    blocks = padded.reshape(ph // 8, 8, pw // 8, 8).transpose(0, 2, 1, 3)
    coefficients = block_dct2(blocks)
    quantized = np.rint(coefficients / table) * table
    restored = block_idct2(quantized)
    out = restored.transpose(0, 2, 1, 3).reshape(ph, pw)
    return out[:h, :w] + 128.0


def _subsample(plane: np.ndarray) -> np.ndarray:
    """2x2 box average (4:2:0 chroma subsampling)."""
    h, w = plane.shape
    padded, _ = _pad_to_blocks(plane)  # even-size guarantee via 8-pad
    ph, pw = padded.shape
    small = padded.reshape(ph // 2, 2, pw // 2, 2).mean(axis=(1, 3))
    return small


def _upsample(plane: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Nearest 2x upsampling back to the original shape."""
    big = np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)
    return big[: shape[0], : shape[1]]


def jpeg_roundtrip(
    image: np.ndarray,
    quality: int = 85,
    *,
    subsample_chroma: bool = True,
) -> np.ndarray:
    """Return *image* after one JPEG encode/decode at *quality*.

    Grayscale inputs use the luma path only; color inputs go through YCbCr
    with optional 4:2:0 chroma subsampling. Output is float64 clipped to
    0–255 with the input's spatial shape and channel count.
    """
    ensure_image(image)
    luma_table, chroma_table = quantization_tables(quality)
    img = as_float(image)
    if img.ndim == 2 or img.shape[2] == 1:
        plane = img if img.ndim == 2 else img[:, :, 0]
        out = np.clip(_compress_plane(plane, luma_table), 0.0, 255.0)
        return out if img.ndim == 2 else out[:, :, None]

    ycbcr = rgb_to_ycbcr(to_rgb(img))
    y = _compress_plane(ycbcr[:, :, 0], luma_table)
    chroma_planes = []
    for c in (1, 2):
        plane = ycbcr[:, :, c]
        if subsample_chroma:
            small = _subsample(plane)
            small = _compress_plane(small, chroma_table)
            chroma_planes.append(_upsample(small, plane.shape))
        else:
            chroma_planes.append(_compress_plane(plane, chroma_table))
    restored = np.stack([y, *chroma_planes], axis=2)
    return np.clip(ycbcr_to_rgb(restored), 0.0, 255.0)
