"""Image resizing built on the coefficient-matrix representation.

``resize`` is the single entry point used across the library (detectors,
attacks, benchmarks). It applies the separable operators from
:mod:`repro.imaging.coefficients`::

    scaled = L @ image @ R        (per channel)

which makes the resizer, the attack, and the analysis all agree *exactly* on
the scaling semantics — the property the reproduction depends on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScalingError
from repro.imaging.coefficients import scaling_operators
from repro.imaging.image import as_float, ensure_image

__all__ = ["resize", "downscale_then_upscale", "ALGORITHMS"]

#: Algorithms accepted by :func:`resize`.
ALGORITHMS = ("nearest", "bilinear", "bicubic", "lanczos4", "area")


def resize(
    image: np.ndarray,
    out_shape: tuple[int, int],
    algorithm: str = "bilinear",
) -> np.ndarray:
    """Resize *image* to ``out_shape`` (height, width).

    Accepts grayscale ``(H, W)`` or color ``(H, W, C)`` arrays in uint8 or
    float64 and returns float64 on the 0–255 scale. The output is **not**
    clipped or rounded: detectors compare float pixels directly, and the
    attack optimizer needs the unquantized linear output.
    """
    ensure_image(image)
    h_out, w_out = out_shape
    if h_out <= 0 or w_out <= 0:
        raise ScalingError(f"output shape must be positive, got {out_shape}")
    img = as_float(image)
    h_in, w_in = img.shape[:2]
    left, right = scaling_operators((h_in, w_in), (h_out, w_out), algorithm)
    if img.ndim == 2:
        return left @ img @ right
    planes = [left @ img[:, :, c] @ right for c in range(img.shape[2])]
    return np.stack(planes, axis=2)


def downscale_then_upscale(
    image: np.ndarray,
    small_shape: tuple[int, int],
    algorithm: str = "bilinear",
    upscale_algorithm: str | None = None,
) -> np.ndarray:
    """Round-trip an image through the model's input size and back.

    This is the core operation of the paper's *scaling detection* method
    (Section 3.1): ``S = up(down(I))``. Benign images survive the round
    trip; attack images come back as the hidden target. By default the same
    algorithm is used both ways, matching the deployment being defended.
    """
    ensure_image(image)
    down = resize(image, small_shape, algorithm)
    up_alg = upscale_algorithm or algorithm
    return resize(down, image.shape[:2], up_alg)
