"""Image resizing built on the coefficient-matrix representation.

``resize`` is the single entry point used across the library (detectors,
attacks, benchmarks). It applies the separable operators from
:mod:`repro.imaging.coefficients`::

    scaled = L @ image @ R        (per channel)

which makes the resizer, the attack, and the analysis all agree *exactly* on
the scaling semantics — the property the reproduction depends on.

Operator pairs are served from a process-wide LRU cache keyed by
``(src_shape, dst_shape, algorithm)`` so a deployment builds each scaling
operator once, not once per image. The cache counts hits and misses;
:func:`operator_cache_stats` exposes them for dashboards (the serving
pipeline folds them into ``pipeline.stats``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScalingError
from repro.imaging.coefficients import scaling_operators
from repro.imaging.image import as_float, ensure_image
from repro.imaging.plans import PlanCache

__all__ = [
    "resize",
    "downscale_then_upscale",
    "get_scaling_operators",
    "operator_cache_stats",
    "clear_operator_cache",
    "OperatorCache",
    "ALGORITHMS",
]

#: Algorithms accepted by :func:`resize`.
ALGORITHMS = ("nearest", "bilinear", "bicubic", "lanczos4", "area")


class OperatorCache(PlanCache):
    """Thread-safe LRU cache of ``(L, R)`` scaling operator pairs.

    A :class:`~repro.imaging.plans.PlanCache` whose builder is
    :func:`~repro.imaging.coefficients.scaling_operators`, keyed by
    ``((h_in, w_in), (h_out, w_out), algorithm)``. A deployment sees a
    handful of distinct keys (one per served model size), so the default
    capacity is generous; eviction exists only to bound memory in
    pathological sweeps over many sizes.
    """

    def __init__(self, maxsize: int = 256) -> None:
        super().__init__(lambda key: scaling_operators(*key), maxsize)

    def get(
        self,
        in_shape: tuple[int, int],
        out_shape: tuple[int, int],
        algorithm: str = "bilinear",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return cached ``(L, R)`` with ``scaled = L @ image @ R``."""
        return self.lookup((tuple(in_shape), tuple(out_shape), algorithm))


#: Process-wide operator cache shared by every resize/detector in the process.
_OPERATOR_CACHE = OperatorCache()


def get_scaling_operators(
    in_shape: tuple[int, int],
    out_shape: tuple[int, int],
    algorithm: str = "bilinear",
) -> tuple[np.ndarray, np.ndarray]:
    """``(L, R)`` for ``scaled = L @ image @ R``, via the process cache."""
    return _OPERATOR_CACHE.get(in_shape, out_shape, algorithm)


def operator_cache_stats() -> dict[str, float | int]:
    """Hit/miss statistics of the process-wide operator cache."""
    return _OPERATOR_CACHE.stats()


def clear_operator_cache() -> None:
    """Reset the process-wide operator cache (tests and benchmarks)."""
    _OPERATOR_CACHE.clear()


def resize(
    image: np.ndarray,
    out_shape: tuple[int, int],
    algorithm: str = "bilinear",
) -> np.ndarray:
    """Resize *image* to ``out_shape`` (height, width).

    Accepts grayscale ``(H, W)`` or color ``(H, W, C)`` arrays in uint8 or
    float64 and returns float64 on the 0–255 scale. The output is **not**
    clipped or rounded: detectors compare float pixels directly, and the
    attack optimizer needs the unquantized linear output.
    """
    ensure_image(image)
    h_out, w_out = out_shape
    if h_out <= 0 or w_out <= 0:
        raise ScalingError(f"output shape must be positive, got {out_shape}")
    img = as_float(image)
    left, right = get_scaling_operators(img.shape[:2], (h_out, w_out), algorithm)
    if img.ndim == 2:
        return left @ img @ right
    # One batched matmul over channels-first planes: a stacked matmul runs
    # the same GEMM per 2-D slice the old per-channel loop ran, so the
    # result is bit-identical — only the Python dispatch overhead is gone.
    planes = np.ascontiguousarray(img.transpose(2, 0, 1))
    return np.ascontiguousarray(np.matmul(np.matmul(left, planes), right).transpose(1, 2, 0))


def downscale_then_upscale(
    image: np.ndarray,
    small_shape: tuple[int, int],
    algorithm: str = "bilinear",
    upscale_algorithm: str | None = None,
) -> np.ndarray:
    """Round-trip an image through the model's input size and back.

    This is the core operation of the paper's *scaling detection* method
    (Section 3.1): ``S = up(down(I))``. Benign images survive the round
    trip; attack images come back as the hidden target. By default the same
    algorithm is used both ways, matching the deployment being defended.
    """
    ensure_image(image)
    down = resize(image, small_shape, algorithm)
    up_alg = upscale_algorithm or algorithm
    return resize(down, image.shape[:2], up_alg)
