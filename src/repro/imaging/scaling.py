"""Image resizing built on the coefficient-matrix representation.

``resize`` is the single entry point used across the library (detectors,
attacks, benchmarks). It applies the separable operators from
:mod:`repro.imaging.coefficients`::

    scaled = L @ image @ R        (per channel)

which makes the resizer, the attack, and the analysis all agree *exactly* on
the scaling semantics — the property the reproduction depends on.

Operator pairs are served from a process-wide LRU cache keyed by
``(src_shape, dst_shape, algorithm)`` so a deployment builds each scaling
operator once, not once per image. The cache counts hits and misses;
:func:`operator_cache_stats` exposes them for dashboards (the serving
pipeline folds them into ``pipeline.stats``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.errors import ScalingError
from repro.imaging.coefficients import scaling_operators
from repro.imaging.image import as_float, ensure_image

__all__ = [
    "resize",
    "downscale_then_upscale",
    "get_scaling_operators",
    "operator_cache_stats",
    "clear_operator_cache",
    "OperatorCache",
    "ALGORITHMS",
]

#: Algorithms accepted by :func:`resize`.
ALGORITHMS = ("nearest", "bilinear", "bicubic", "lanczos4", "area")


class OperatorCache:
    """Thread-safe LRU cache of ``(L, R)`` scaling operator pairs.

    Keyed by ``((h_in, w_in), (h_out, w_out), algorithm)``. A deployment
    sees a handful of distinct keys (one per served model size), so the
    default capacity is generous; eviction exists only to bound memory in
    pathological sweeps over many sizes.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ScalingError(f"operator cache maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[
            tuple[tuple[int, int], tuple[int, int], str], tuple[np.ndarray, np.ndarray]
        ] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get(
        self,
        in_shape: tuple[int, int],
        out_shape: tuple[int, int],
        algorithm: str = "bilinear",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return cached ``(L, R)`` with ``scaled = L @ image @ R``."""
        key = (tuple(in_shape), tuple(out_shape), algorithm)
        with self._lock:
            pair = self._entries.get(key)
            if pair is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return pair
            self._misses += 1
        # Build outside the lock: construction is pure and idempotent, so a
        # rare duplicate build beats serializing every miss on one lock.
        pair = scaling_operators(key[0], key[1], algorithm)
        with self._lock:
            self._entries[key] = pair
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return pair

    def stats(self) -> dict[str, float | int]:
        """Hit/miss counters and the current fill, for dashboards."""
        with self._lock:
            hits, misses, size = self._hits, self._misses, len(self._entries)
        total = hits + misses
        return {
            "size": size,
            "maxsize": self.maxsize,
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0


#: Process-wide operator cache shared by every resize/detector in the process.
_OPERATOR_CACHE = OperatorCache()


def get_scaling_operators(
    in_shape: tuple[int, int],
    out_shape: tuple[int, int],
    algorithm: str = "bilinear",
) -> tuple[np.ndarray, np.ndarray]:
    """``(L, R)`` for ``scaled = L @ image @ R``, via the process cache."""
    return _OPERATOR_CACHE.get(in_shape, out_shape, algorithm)


def operator_cache_stats() -> dict[str, float | int]:
    """Hit/miss statistics of the process-wide operator cache."""
    return _OPERATOR_CACHE.stats()


def clear_operator_cache() -> None:
    """Reset the process-wide operator cache (tests and benchmarks)."""
    _OPERATOR_CACHE.clear()


def resize(
    image: np.ndarray,
    out_shape: tuple[int, int],
    algorithm: str = "bilinear",
) -> np.ndarray:
    """Resize *image* to ``out_shape`` (height, width).

    Accepts grayscale ``(H, W)`` or color ``(H, W, C)`` arrays in uint8 or
    float64 and returns float64 on the 0–255 scale. The output is **not**
    clipped or rounded: detectors compare float pixels directly, and the
    attack optimizer needs the unquantized linear output.
    """
    ensure_image(image)
    h_out, w_out = out_shape
    if h_out <= 0 or w_out <= 0:
        raise ScalingError(f"output shape must be positive, got {out_shape}")
    img = as_float(image)
    left, right = get_scaling_operators(img.shape[:2], (h_out, w_out), algorithm)
    if img.ndim == 2:
        return left @ img @ right
    planes = [left @ img[:, :, c] @ right for c in range(img.shape[2])]
    return np.stack(planes, axis=2)


def downscale_then_upscale(
    image: np.ndarray,
    small_shape: tuple[int, int],
    algorithm: str = "bilinear",
    upscale_algorithm: str | None = None,
) -> np.ndarray:
    """Round-trip an image through the model's input size and back.

    This is the core operation of the paper's *scaling detection* method
    (Section 3.1): ``S = up(down(I))``. Benign images survive the round
    trip; attack images come back as the hidden target. By default the same
    algorithm is used both ways, matching the deployment being defended.
    """
    ensure_image(image)
    down = resize(image, small_shape, algorithm)
    up_alg = upscale_algorithm or algorithm
    return resize(down, image.shape[:2], up_alg)
