"""Color-space conversions.

Only the conversions the detection pipeline needs: RGB to grayscale
(ITU-R BT.601 luma, matching OpenCV's ``cvtColor(..., COLOR_RGB2GRAY)``),
RGB to/from YCbCr, and channel utilities. All functions accept uint8 or
float64 images on the 0–255 scale and return float64.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.image import as_float, channel_count, ensure_image

__all__ = ["to_grayscale", "rgb_to_ycbcr", "ycbcr_to_rgb", "to_rgb"]

# BT.601 luma weights — identical to OpenCV's RGB→GRAY conversion.
_LUMA = np.array([0.299, 0.587, 0.114])


def to_grayscale(image: np.ndarray) -> np.ndarray:
    """Collapse an image to a single 2-D luma plane (float64, 0–255).

    Grayscale inputs are returned as a float copy; alpha channels are
    ignored for the luma computation.
    """
    ensure_image(image)
    img = as_float(image)
    channels = channel_count(img)
    if channels == 1:
        return img if img.ndim == 2 else img[:, :, 0]
    if channels == 4:
        img = img[:, :, :3]
    return img @ _LUMA


def to_rgb(image: np.ndarray) -> np.ndarray:
    """Promote any supported image to a 3-channel RGB float64 array."""
    ensure_image(image)
    img = as_float(image)
    channels = channel_count(img)
    if channels == 3:
        return img
    if channels == 4:
        return img[:, :, :3]
    plane = img if img.ndim == 2 else img[:, :, 0]
    return np.stack([plane] * 3, axis=2)


def rgb_to_ycbcr(image: np.ndarray) -> np.ndarray:
    """Convert RGB (0–255) to full-range YCbCr (JPEG convention)."""
    img = as_float(image)
    if channel_count(img) != 3:
        raise ImageError("rgb_to_ycbcr expects a 3-channel image")
    r, g, b = img[:, :, 0], img[:, :, 1], img[:, :, 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = 128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b
    cr = 128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b
    return np.stack([y, cb, cr], axis=2)


def ycbcr_to_rgb(image: np.ndarray) -> np.ndarray:
    """Convert full-range YCbCr back to RGB (float64, clipped to 0–255)."""
    img = as_float(image)
    if channel_count(img) != 3:
        raise ImageError("ycbcr_to_rgb expects a 3-channel image")
    y, cb, cr = img[:, :, 0], img[:, :, 1] - 128.0, img[:, :, 2] - 128.0
    r = y + 1.402 * cr
    g = y - 0.344136 * cb - 0.714136 * cr
    b = y + 1.772 * cb
    return np.clip(np.stack([r, g, b], axis=2), 0.0, 255.0)
