"""Image similarity metrics (paper Section 4.2).

* :func:`mse` — mean squared error (Eq. 5), the scaling detector's default.
* :func:`ssim` — structural similarity (Eq. 6), windowed with a Gaussian,
  constants and window matching the reference implementation of
  Wang et al. 2004 (``K1=0.01, K2=0.03, L=255``, 11×11, σ=1.5).
* :func:`psnr` — peak signal-to-noise ratio (Eq. 8); the paper's appendix
  shows it is *not* a usable detection metric — we keep it to reproduce
  that negative result.
* :func:`histogram_intersection` — the color-histogram similarity Xiao et
  al. suggested as a defense; the paper (and our ablation bench) show it
  fails to separate benign from attack images.

All metrics accept uint8 or float64 images on the 0–255 scale, any channel
count, and require both operands to share one shape.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ImageError
from repro.imaging.image import as_float, ensure_image

try:  # SciPy is a declared dependency; guarded for minimal installs.
    from scipy.signal import sepfir2d as _sepfir2d
except ImportError:  # pragma: no cover
    _sepfir2d = None

__all__ = ["mse", "psnr", "ssim", "ssim_fast", "histogram_intersection"]


def _check_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    ensure_image(a, name="first image")
    ensure_image(b, name="second image")
    if a.shape != b.shape:
        raise ImageError(f"images must share a shape: {a.shape} vs {b.shape}")
    return as_float(a), as_float(b)


def mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared pixel error over all pixels and channels (paper Eq. 5)."""
    fa, fb = _check_pair(a, b)
    return float(np.mean((fa - fb) ** 2))


def psnr(a: np.ndarray, b: np.ndarray, *, max_value: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (paper Eq. 8).

    Returns ``inf`` for identical images.
    """
    err = mse(a, b)
    if err == 0:
        return float("inf")
    return float(10.0 * np.log10(max_value**2 / err))


def _gaussian_window(size: int, sigma: float) -> np.ndarray:
    x = np.arange(size, dtype=np.float64) - (size - 1) / 2.0
    g = np.exp(-0.5 * (x / sigma) ** 2)
    return g / g.sum()


def _filter2_valid(plane: np.ndarray, window: np.ndarray) -> np.ndarray:
    """Separable 2-D correlation with 'valid' boundary handling."""
    rows = sliding_window_view(plane, len(window), axis=1) @ window
    cols = sliding_window_view(rows, len(window), axis=0)
    return np.tensordot(cols, window, axes=([-1], [0]))


def _ssim_plane(a: np.ndarray, b: np.ndarray, window: np.ndarray, c1: float, c2: float) -> float:
    mu_a = _filter2_valid(a, window)
    mu_b = _filter2_valid(b, window)
    mu_a_sq, mu_b_sq, mu_ab = mu_a * mu_a, mu_b * mu_b, mu_a * mu_b
    sigma_a_sq = _filter2_valid(a * a, window) - mu_a_sq
    sigma_b_sq = _filter2_valid(b * b, window) - mu_b_sq
    sigma_ab = _filter2_valid(a * b, window) - mu_ab
    numerator = (2 * mu_ab + c1) * (2 * sigma_ab + c2)
    denominator = (mu_a_sq + mu_b_sq + c1) * (sigma_a_sq + sigma_b_sq + c2)
    return float(np.mean(numerator / denominator))


def ssim(
    a: np.ndarray,
    b: np.ndarray,
    *,
    window_size: int = 11,
    sigma: float = 1.5,
    k1: float = 0.01,
    k2: float = 0.03,
    max_value: float = 255.0,
) -> float:
    """Mean structural similarity index between two images (paper Eq. 6).

    Color images are scored per channel and averaged. Images smaller than
    the window fall back to a single global window.
    """
    fa, fb = _check_pair(a, b)
    h, w = fa.shape[:2]
    size = min(window_size, h, w)
    window = _gaussian_window(size, sigma)
    c1 = (k1 * max_value) ** 2
    c2 = (k2 * max_value) ** 2
    if fa.ndim == 2:
        return _ssim_plane(fa, fb, window, c1, c2)
    scores = [
        _ssim_plane(fa[:, :, c], fb[:, :, c], window, c1, c2)
        for c in range(fa.shape[2])
    ]
    return float(np.mean(scores))


def _filter2_valid_fast(plane: np.ndarray, window: np.ndarray) -> np.ndarray:
    """:func:`_filter2_valid` through SciPy's C separable filter.

    ``sepfir2d`` runs the same separable correlation in one C pass
    (~2x faster than the sliding-window matmuls); only the interior of
    its same-size output is kept, where boundary handling cannot reach,
    so the values differ from :func:`_filter2_valid` by summation order
    alone (observed ≤1e-15 relative). Falls back to the exact routine
    for even window sizes (``sepfir2d`` needs odd taps) or without SciPy.
    """
    size = window.shape[0]
    if _sepfir2d is None or size % 2 == 0:
        return _filter2_valid(plane, window)
    margin = size // 2
    full = _sepfir2d(np.ascontiguousarray(plane), window, window)
    return full[margin : plane.shape[0] - margin, margin : plane.shape[1] - margin]


def _ssim_plane_fast(
    a: np.ndarray, b: np.ndarray, window: np.ndarray, c1: float, c2: float
) -> float:
    mu_a = _filter2_valid_fast(a, window)
    mu_b = _filter2_valid_fast(b, window)
    mu_a_sq, mu_b_sq, mu_ab = mu_a * mu_a, mu_b * mu_b, mu_a * mu_b
    sigma_a_sq = _filter2_valid_fast(a * a, window) - mu_a_sq
    sigma_b_sq = _filter2_valid_fast(b * b, window) - mu_b_sq
    sigma_ab = _filter2_valid_fast(a * b, window) - mu_ab
    numerator = (2 * mu_ab + c1) * (2 * sigma_ab + c2)
    denominator = (mu_a_sq + mu_b_sq + c1) * (sigma_a_sq + sigma_b_sq + c2)
    return float(np.mean(numerator / denominator))


def ssim_fast(
    a: np.ndarray,
    b: np.ndarray,
    *,
    window_size: int = 11,
    sigma: float = 1.5,
    k1: float = 0.01,
    k2: float = 0.03,
    max_value: float = 255.0,
) -> float:
    """:func:`ssim` with the windowed statistics filtered in C (plan mode).

    Same windows, constants, and per-channel averaging as :func:`ssim`;
    the five filtered maps per channel come from
    :func:`_filter2_valid_fast`, so scores agree with :func:`ssim` to
    well under 1e-9 relative (only summation order differs). The exact
    scoring mode keeps calling :func:`ssim`.
    """
    fa, fb = _check_pair(a, b)
    h, w = fa.shape[:2]
    size = min(window_size, h, w)
    window = _gaussian_window(size, sigma)
    c1 = (k1 * max_value) ** 2
    c2 = (k2 * max_value) ** 2
    if fa.ndim == 2:
        return _ssim_plane_fast(fa, fb, window, c1, c2)
    scores = [
        _ssim_plane_fast(fa[:, :, c], fb[:, :, c], window, c1, c2)
        for c in range(fa.shape[2])
    ]
    return float(np.mean(scores))


def histogram_intersection(a: np.ndarray, b: np.ndarray, *, bins: int = 64) -> float:
    """Normalized color-histogram intersection in ``[0, 1]``.

    The metric Xiao et al. proposed for detecting attack images. Because a
    scaling attack moves only a sparse subset of pixels, the global color
    distribution barely changes — so this score stays near 1 for attack
    images too. Kept as the paper's (and our) negative baseline.
    """
    fa, fb = _check_pair(a, b)
    edges = np.linspace(0.0, 256.0, bins + 1)
    if fa.ndim == 2:
        fa = fa[:, :, None]
        fb = fb[:, :, None]
    total = 0.0
    for c in range(fa.shape[2]):
        hist_a, _ = np.histogram(fa[:, :, c], bins=edges)
        hist_b, _ = np.histogram(fb[:, :, c], bins=edges)
        hist_a = hist_a / max(hist_a.sum(), 1)
        hist_b = hist_b / max(hist_b.sum(), 1)
        total += float(np.minimum(hist_a, hist_b).sum())
    return total / fa.shape[2]
