"""Raster drawing primitives.

A tiny software rasterizer used by :mod:`repro.eval.figures` to render the
paper's figures as PNG files without any plotting dependency (matplotlib is
not available in this environment). Supports filled rectangles, 1-px lines
(Bresenham), axis-aligned ticks, and a 5x7 bitmap font sufficient for axis
labels and legends.

All functions draw in place on a float64 RGB canvas in the 0–255 range;
colors are length-3 sequences.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ImageError

__all__ = ["new_canvas", "fill_rect", "draw_line", "draw_text", "text_width", "GLYPHS"]


def new_canvas(height: int, width: int, color: Sequence[float] = (255.0, 255.0, 255.0)) -> np.ndarray:
    """A fresh RGB canvas filled with *color*."""
    if height <= 0 or width <= 0:
        raise ImageError(f"canvas must be positive-sized, got {height}x{width}")
    canvas = np.empty((height, width, 3), dtype=np.float64)
    canvas[:, :] = np.asarray(color, dtype=np.float64)
    return canvas


def _clip_span(lo: int, hi: int, limit: int) -> tuple[int, int]:
    return max(lo, 0), min(hi, limit)


def fill_rect(
    canvas: np.ndarray,
    row0: int,
    col0: int,
    row1: int,
    col1: int,
    color: Sequence[float],
) -> None:
    """Fill the half-open rectangle [row0, row1) x [col0, col1), clipped."""
    h, w = canvas.shape[:2]
    r0, r1 = _clip_span(min(row0, row1), max(row0, row1), h)
    c0, c1 = _clip_span(min(col0, col1), max(col0, col1), w)
    if r0 < r1 and c0 < c1:
        canvas[r0:r1, c0:c1] = np.asarray(color, dtype=np.float64)


def draw_line(
    canvas: np.ndarray,
    row0: int,
    col0: int,
    row1: int,
    col1: int,
    color: Sequence[float],
) -> None:
    """1-pixel Bresenham line between two points, clipped to the canvas."""
    h, w = canvas.shape[:2]
    color_arr = np.asarray(color, dtype=np.float64)
    dr = abs(row1 - row0)
    dc = abs(col1 - col0)
    step_r = 1 if row1 >= row0 else -1
    step_c = 1 if col1 >= col0 else -1
    error = (dc if dc > dr else -dr) // 2
    r, c = row0, col0
    while True:
        if 0 <= r < h and 0 <= c < w:
            canvas[r, c] = color_arr
        if r == row1 and c == col1:
            break
        e2 = error
        if e2 > -dc:
            error -= dr
            c += step_c
        if e2 < dr:
            error += dc
            r += step_r


# 5x7 bitmap font: each glyph is 7 strings of 5 chars ('#' = on).
_RAW_GLYPHS: dict[str, tuple[str, ...]] = {
    "0": ("#####", "#...#", "#..##", "#.#.#", "##..#", "#...#", "#####"),
    "1": ("..#..", ".##..", "..#..", "..#..", "..#..", "..#..", "#####"),
    "2": ("#####", "....#", "....#", "#####", "#....", "#....", "#####"),
    "3": ("#####", "....#", "....#", ".####", "....#", "....#", "#####"),
    "4": ("#...#", "#...#", "#...#", "#####", "....#", "....#", "....#"),
    "5": ("#####", "#....", "#....", "#####", "....#", "....#", "#####"),
    "6": ("#####", "#....", "#....", "#####", "#...#", "#...#", "#####"),
    "7": ("#####", "....#", "...#.", "..#..", ".#...", ".#...", ".#..."),
    "8": ("#####", "#...#", "#...#", "#####", "#...#", "#...#", "#####"),
    "9": ("#####", "#...#", "#...#", "#####", "....#", "....#", "#####"),
    ".": (".....", ".....", ".....", ".....", ".....", ".##..", ".##.."),
    "-": (".....", ".....", ".....", "#####", ".....", ".....", "....."),
    "+": (".....", "..#..", "..#..", "#####", "..#..", "..#..", "....."),
    "%": ("##..#", "##..#", "...#.", "..#..", ".#...", "#..##", "#..##"),
    "/": ("....#", "....#", "...#.", "..#..", ".#...", "#....", "#...."),
    "=": (".....", ".....", "#####", ".....", "#####", ".....", "....."),
    ":": (".....", ".##..", ".##..", ".....", ".##..", ".##..", "....."),
    "(": ("..#..", ".#...", "#....", "#....", "#....", ".#...", "..#.."),
    ")": ("..#..", "...#.", "....#", "....#", "....#", "...#.", "..#.."),
    " ": (".....",) * 7,
    "A": (".###.", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"),
    "B": ("####.", "#...#", "#...#", "####.", "#...#", "#...#", "####."),
    "C": (".####", "#....", "#....", "#....", "#....", "#....", ".####"),
    "D": ("####.", "#...#", "#...#", "#...#", "#...#", "#...#", "####."),
    "E": ("#####", "#....", "#....", "####.", "#....", "#....", "#####"),
    "F": ("#####", "#....", "#....", "####.", "#....", "#....", "#...."),
    "G": (".####", "#....", "#....", "#.###", "#...#", "#...#", ".###."),
    "H": ("#...#", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"),
    "I": ("#####", "..#..", "..#..", "..#..", "..#..", "..#..", "#####"),
    "K": ("#...#", "#..#.", "#.#..", "##...", "#.#..", "#..#.", "#...#"),
    "L": ("#....", "#....", "#....", "#....", "#....", "#....", "#####"),
    "M": ("#...#", "##.##", "#.#.#", "#.#.#", "#...#", "#...#", "#...#"),
    "N": ("#...#", "##..#", "#.#.#", "#..##", "#...#", "#...#", "#...#"),
    "O": (".###.", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."),
    "P": ("####.", "#...#", "#...#", "####.", "#....", "#....", "#...."),
    "R": ("####.", "#...#", "#...#", "####.", "#.#..", "#..#.", "#...#"),
    "S": (".####", "#....", "#....", ".###.", "....#", "....#", "####."),
    "T": ("#####", "..#..", "..#..", "..#..", "..#..", "..#..", "..#.."),
    "U": ("#...#", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."),
    "V": ("#...#", "#...#", "#...#", "#...#", "#...#", ".#.#.", "..#.."),
    "W": ("#...#", "#...#", "#...#", "#.#.#", "#.#.#", "##.##", "#...#"),
    "X": ("#...#", "#...#", ".#.#.", "..#..", ".#.#.", "#...#", "#...#"),
    "Y": ("#...#", "#...#", ".#.#.", "..#..", "..#..", "..#..", "..#.."),
    "Z": ("#####", "....#", "...#.", "..#..", ".#...", "#....", "#####"),
}

#: Glyph bitmaps as (7, 5) boolean arrays, keyed by uppercase character.
GLYPHS: dict[str, np.ndarray] = {
    char: np.array([[cell == "#" for cell in row] for row in rows])
    for char, rows in _RAW_GLYPHS.items()
}

_GLYPH_H, _GLYPH_W = 7, 5
_SPACING = 1


def text_width(text: str, scale: int = 1) -> int:
    """Pixel width :func:`draw_text` will use for *text*."""
    if not text:
        return 0
    return (len(text) * (_GLYPH_W + _SPACING) - _SPACING) * scale


def draw_text(
    canvas: np.ndarray,
    row: int,
    col: int,
    text: str,
    color: Sequence[float],
    *,
    scale: int = 1,
) -> None:
    """Render *text* with its top-left corner at (row, col).

    Characters are uppercased; anything without a glyph renders as a small
    box so missing coverage is visible rather than silent.
    """
    if scale < 1:
        raise ImageError(f"text scale must be >= 1, got {scale}")
    color_arr = np.asarray(color, dtype=np.float64)
    h, w = canvas.shape[:2]
    cursor = col
    fallback = np.zeros((_GLYPH_H, _GLYPH_W), dtype=bool)
    fallback[1:-1, 1:-1] = True
    for char in text.upper():
        glyph = GLYPHS.get(char, fallback)
        mask = np.kron(glyph, np.ones((scale, scale), dtype=bool))
        rows_idx, cols_idx = np.nonzero(mask)
        rr = rows_idx + row
        cc = cols_idx + cursor
        keep = (rr >= 0) & (rr < h) & (cc >= 0) & (cc < w)
        canvas[rr[keep], cc[keep]] = color_arr
        cursor += (_GLYPH_W + _SPACING) * scale
