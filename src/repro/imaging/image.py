"""Image container and validation helpers.

The library represents images as plain ``numpy.ndarray`` objects:

* grayscale: shape ``(H, W)``
* color:     shape ``(H, W, C)`` with ``C`` in ``{1, 3, 4}``

Two dtype conventions are used throughout:

* **uint8** — storage form, values in ``[0, 255]``; what codecs produce.
* **float64** — working form, values nominally in ``[0, 255]`` (not
  ``[0, 1]``); what the scaling, filtering, and attack code operates on.
  Keeping the 0–255 range in floats matches the paper's metric values
  (e.g. the MSE threshold 1714.96 assumes 8-bit pixel scale).

This module centralizes conversion and validation so every other module can
assume well-formed inputs.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ImageError

__all__ = [
    "MAX_PIXEL",
    "as_float",
    "as_uint8",
    "clip_pixels",
    "ensure_image",
    "channel_count",
    "is_grayscale",
    "split_channels",
    "merge_channels",
    "pad_reflect",
    "image_summary",
]

#: Highest representable 8-bit pixel intensity.
MAX_PIXEL = 255.0


def ensure_image(array: np.ndarray, *, name: str = "image") -> np.ndarray:
    """Validate that *array* is a 2-D or 3-D image and return it.

    Raises :class:`~repro.errors.ImageError` when the shape cannot be an
    image (wrong rank, zero-sized axis, or unsupported channel count).
    """
    if not isinstance(array, np.ndarray):
        raise ImageError(f"{name} must be a numpy array, got {type(array).__name__}")
    if array.ndim not in (2, 3):
        raise ImageError(f"{name} must be 2-D or 3-D, got shape {array.shape}")
    if array.size == 0:
        raise ImageError(f"{name} has a zero-sized axis: shape {array.shape}")
    if array.ndim == 3 and array.shape[2] not in (1, 3, 4):
        raise ImageError(
            f"{name} has {array.shape[2]} channels; expected 1, 3, or 4"
        )
    if not np.issubdtype(array.dtype, np.number):
        raise ImageError(f"{name} must be numeric, got dtype {array.dtype}")
    return array


def as_float(image: np.ndarray) -> np.ndarray:
    """Return *image* as float64 in the 0–255 working range.

    uint8 inputs are promoted; float inputs are passed through unchanged
    (already assumed to be on the 0–255 scale). Always returns a new array
    or a float64 view-safe copy so callers may mutate the result.
    """
    ensure_image(image)
    return image.astype(np.float64, copy=True)


def as_uint8(image: np.ndarray) -> np.ndarray:
    """Round and clip a working-form image back to uint8 storage form."""
    ensure_image(image)
    return np.clip(np.rint(image), 0, MAX_PIXEL).astype(np.uint8)


def clip_pixels(image: np.ndarray) -> np.ndarray:
    """Clip a float image to the representable ``[0, 255]`` range in place."""
    return np.clip(image, 0.0, MAX_PIXEL, out=image)


def channel_count(image: np.ndarray) -> int:
    """Number of color channels (1 for a 2-D grayscale array)."""
    ensure_image(image)
    return 1 if image.ndim == 2 else image.shape[2]


def is_grayscale(image: np.ndarray) -> bool:
    """True when the image is 2-D or has exactly one channel."""
    return channel_count(image) == 1


def split_channels(image: np.ndarray) -> list[np.ndarray]:
    """Split an image into a list of 2-D channel planes."""
    ensure_image(image)
    if image.ndim == 2:
        return [image]
    return [image[:, :, c] for c in range(image.shape[2])]


def merge_channels(planes: Iterable[np.ndarray]) -> np.ndarray:
    """Stack 2-D channel planes back into an image.

    A single plane yields a 2-D grayscale image; several planes yield an
    ``(H, W, C)`` array. All planes must share one shape.
    """
    planes = list(planes)
    if not planes:
        raise ImageError("merge_channels requires at least one plane")
    shapes = {p.shape for p in planes}
    if len(shapes) != 1:
        raise ImageError(f"channel planes disagree on shape: {sorted(shapes)}")
    if any(p.ndim != 2 for p in planes):
        raise ImageError("channel planes must be 2-D")
    if len(planes) == 1:
        return planes[0]
    return np.stack(planes, axis=2)


def pad_reflect(image: np.ndarray, pad_h: int, pad_w: int) -> np.ndarray:
    """Reflect-pad the two spatial axes (channels untouched)."""
    ensure_image(image)
    if pad_h < 0 or pad_w < 0:
        raise ImageError("padding must be non-negative")
    pad = [(pad_h, pad_h), (pad_w, pad_w)]
    if image.ndim == 3:
        pad.append((0, 0))
    return np.pad(image, pad, mode="reflect")


def image_summary(image: np.ndarray) -> str:
    """One-line human-readable description used in logs and CLI output."""
    ensure_image(image)
    h, w = image.shape[:2]
    c = channel_count(image)
    return (
        f"{h}x{w}x{c} {image.dtype} "
        f"range=[{float(image.min()):.1f}, {float(image.max()):.1f}]"
    )
