"""Imaging substrate: everything the detectors and attacks stand on.

The paper's pipeline assumes OpenCV/TensorFlow image primitives; this
package reimplements the needed subset from scratch (numpy + stdlib) so the
reproduction is self-contained:

* :mod:`repro.imaging.image` — array conventions and validation
* :mod:`repro.imaging.png` / :mod:`repro.imaging.ppm` — file codecs
* :mod:`repro.imaging.color` — color conversions
* :mod:`repro.imaging.kernels` / :mod:`coefficients` / :mod:`scaling` —
  separable resizing as explicit linear operators (the attack surface)
* :mod:`repro.imaging.filtering` — order-statistic and smoothing filters
* :mod:`repro.imaging.fourier` / :mod:`contours` — spectrum analysis
* :mod:`repro.imaging.metrics` / :mod:`histogram` — similarity metrics
* :mod:`repro.imaging.plans` — precompiled scoring plans: fused round-trip
  operators, cached spectrum geometry, and the plan/exact scoring mode
"""

from repro.imaging.color import rgb_to_ycbcr, to_grayscale, to_rgb, ycbcr_to_rgb
from repro.imaging.coefficients import (
    coefficient_sparsity,
    scaling_matrix,
    scaling_operators,
    vulnerable_source_pixels,
)
from repro.imaging.contours import Region, count_spectrum_points, find_regions, label_components
from repro.imaging.filtering import (
    filter_batch,
    gaussian_filter,
    maximum_filter,
    median_filter,
    minimum_filter,
    uniform_filter,
)
from repro.imaging.fourier import (
    binary_spectrum,
    centered_spectrum,
    csp_count,
    csp_count_from_spectrum,
    log_spectrum_image,
    radial_lowpass_mask,
)
from repro.imaging.histogram import channel_histogram, histogram_distance, histogram_match
from repro.imaging.image import as_float, as_uint8, ensure_image
from repro.imaging.metrics import histogram_intersection, mse, psnr, ssim, ssim_fast
from repro.imaging.plans import (
    PlanCache,
    ScoringPlan,
    SpectrumGeometry,
    clear_plan_caches,
    csp_count_fast,
    exact_mode,
    exact_mode_enabled,
    geometry_cache_stats,
    get_scoring_plan,
    get_spectrum_geometry,
    plan_cache_stats,
    scoring_mode,
    set_exact_mode,
    spectrum_magnitude_half,
    spectrum_magnitude_halves,
)
from repro.imaging.png import decode_png, encode_png, read_png, write_png
from repro.imaging.ppm import decode_netpbm, encode_netpbm, read_ppm, write_ppm
from repro.imaging.scaling import (
    ALGORITHMS,
    clear_operator_cache,
    downscale_then_upscale,
    get_scaling_operators,
    operator_cache_stats,
    resize,
)

__all__ = [
    "ALGORITHMS",
    "PlanCache",
    "Region",
    "ScoringPlan",
    "SpectrumGeometry",
    "as_float",
    "as_uint8",
    "binary_spectrum",
    "centered_spectrum",
    "channel_histogram",
    "clear_operator_cache",
    "clear_plan_caches",
    "coefficient_sparsity",
    "count_spectrum_points",
    "csp_count",
    "csp_count_fast",
    "csp_count_from_spectrum",
    "downscale_then_upscale",
    "ensure_image",
    "exact_mode",
    "exact_mode_enabled",
    "filter_batch",
    "find_regions",
    "gaussian_filter",
    "geometry_cache_stats",
    "get_scaling_operators",
    "get_scoring_plan",
    "get_spectrum_geometry",
    "histogram_distance",
    "histogram_intersection",
    "histogram_match",
    "label_components",
    "log_spectrum_image",
    "maximum_filter",
    "median_filter",
    "minimum_filter",
    "mse",
    "operator_cache_stats",
    "plan_cache_stats",
    "psnr",
    "radial_lowpass_mask",
    "scoring_mode",
    "set_exact_mode",
    "spectrum_magnitude_half",
    "spectrum_magnitude_halves",
    "decode_netpbm",
    "decode_png",
    "encode_netpbm",
    "encode_png",
    "read_png",
    "read_ppm",
    "resize",
    "rgb_to_ycbcr",
    "scaling_matrix",
    "scaling_operators",
    "ssim",
    "ssim_fast",
    "to_grayscale",
    "to_rgb",
    "uniform_filter",
    "vulnerable_source_pixels",
    "write_png",
    "write_ppm",
    "ycbcr_to_rgb",
]
