"""PPM/PGM (netpbm) codec.

The netpbm formats are trivial, dependency-free, and handy for tests and
for interchange with other tooling. Supports:

* ``P5`` — binary grayscale (PGM)
* ``P6`` — binary RGB (PPM)
* ``P2``/``P3`` — ASCII variants (read only)

8-bit maxval (255) only.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import CodecError
from repro.imaging.image import as_uint8, channel_count, ensure_image

__all__ = ["decode_netpbm", "encode_netpbm", "read_ppm", "write_ppm"]


def _read_tokens(data: bytes, count: int) -> tuple[list[int], int]:
    """Read *count* whitespace-separated integer tokens, skipping comments.

    Returns the tokens and the offset just past the final token's trailing
    whitespace byte (where binary payload begins).
    """
    tokens: list[int] = []
    pos = 0
    while len(tokens) < count:
        if pos >= len(data):
            raise CodecError("truncated netpbm header")
        byte = data[pos : pos + 1]
        if byte == b"#":
            newline = data.find(b"\n", pos)
            if newline == -1:
                raise CodecError("unterminated comment in netpbm header")
            pos = newline + 1
        elif byte.isspace():
            pos += 1
        else:
            end = pos
            while end < len(data) and not data[end : end + 1].isspace():
                end += 1
            token = data[pos:end]
            try:
                tokens.append(int(token))
            except ValueError as exc:
                raise CodecError(f"bad netpbm header token {token!r}") from exc
            pos = end
    # Exactly one whitespace byte separates the header from binary data.
    if pos < len(data) and data[pos : pos + 1].isspace():
        pos += 1
    return tokens, pos


def read_ppm(path: str | Path) -> np.ndarray:
    """Decode a PGM/PPM file to uint8 ``(H, W)`` or ``(H, W, 3)``."""
    return decode_netpbm(Path(path).read_bytes(), origin=str(path))


def decode_netpbm(data: bytes, *, origin: str = "<bytes>") -> np.ndarray:
    """Decode in-memory PGM/PPM *data* to uint8 ``(H, W)`` or ``(H, W, 3)``.

    *origin* labels error messages, as in :func:`repro.imaging.png.decode_png`.
    """
    path = origin
    magic = data[:2]
    if magic not in (b"P2", b"P3", b"P5", b"P6"):
        raise CodecError(f"{path}: not a supported netpbm file (magic {magic!r})")
    channels = 3 if magic in (b"P3", b"P6") else 1
    (width, height, maxval), offset = _read_tokens(data[2:], 3)
    offset += 2  # account for the magic bytes we sliced off
    if maxval != 255:
        raise CodecError(f"{path}: only maxval 255 supported, got {maxval}")
    n_values = width * height * channels
    if magic in (b"P5", b"P6"):
        payload = data[offset : offset + n_values]
        if len(payload) != n_values:
            raise CodecError(f"{path}: truncated pixel data")
        flat = np.frombuffer(payload, dtype=np.uint8)
    else:
        values = data[offset:].split()
        if len(values) < n_values:
            raise CodecError(f"{path}: truncated ASCII pixel data")
        flat = np.array([int(v) for v in values[:n_values]], dtype=np.uint8)
    if channels == 1:
        return flat.reshape(height, width)
    return flat.reshape(height, width, 3)


def write_ppm(path: str | Path, image: np.ndarray) -> None:
    """Encode a grayscale or RGB image as binary PGM/PPM."""
    Path(path).write_bytes(encode_netpbm(image))


def encode_netpbm(image: np.ndarray) -> bytes:
    """Encode a grayscale or RGB image as in-memory binary PGM/PPM bytes."""
    ensure_image(image)
    channels = channel_count(image)
    if channels not in (1, 3):
        raise CodecError(f"cannot encode {channels}-channel image as netpbm")
    pixels = as_uint8(image)
    if pixels.ndim == 3 and channels == 1:
        pixels = pixels[:, :, 0]
    magic = b"P6" if channels == 3 else b"P5"
    height, width = pixels.shape[:2]
    header = magic + f"\n{width} {height}\n255\n".encode("ascii")
    return header + pixels.tobytes()
