"""Scaling coefficient matrices.

Separable image scaling can be written as a pair of linear operators:

    scaled = L @ image @ R

with ``L`` of shape ``(h_out, h_in)`` acting on rows and ``R`` of shape
``(w_in, w_out)`` acting on columns. This module builds those matrices for
every supported algorithm using the OpenCV sampling convention

    src_x = (dst_x + 0.5) * ratio - 0.5,   ratio = n_in / n_out

with border replication and per-row weight normalization.

The matrices are the common currency of this library: the resizer multiplies
by them, the image-scaling attack optimizes against them, and the
vulnerability analysis inspects their sparsity.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ScalingError
from repro.imaging.kernels import Kernel, get_kernel

__all__ = [
    "scaling_matrix",
    "scaling_operators",
    "coefficient_sparsity",
    "vulnerable_source_pixels",
]


def _nearest_matrix(n_in: int, n_out: int) -> np.ndarray:
    """0/1 matrix selecting OpenCV's INTER_NEAREST source index."""
    ratio = n_in / n_out
    src = np.minimum(np.floor(np.arange(n_out) * ratio).astype(int), n_in - 1)
    matrix = np.zeros((n_out, n_in))
    matrix[np.arange(n_out), src] = 1.0
    return matrix


def _area_matrix(n_in: int, n_out: int) -> np.ndarray:
    """Exact box-average (INTER_AREA) weights for downscaling.

    Output cell ``i`` covers source interval ``[i*r, (i+1)*r)``; the weight
    of source pixel ``j`` is the length of the overlap between that interval
    and ``[j, j+1)`` divided by ``r``. Every source pixel contributes —
    this is the anti-aliased algorithm that resists scaling attacks.

    Computed as one broadcast over the ``(n_out, n_in)`` interval-overlap
    grid; pairs with no overlap get exactly 0, so the result equals
    :func:`_area_matrix_reference` bit for bit.
    """
    ratio = n_in / n_out
    lefts = np.arange(n_out)[:, None] * ratio
    rights = (np.arange(n_out) + 1)[:, None] * ratio
    cells = np.arange(n_in)[None, :]
    overlap = np.minimum(rights, cells + 1) - np.maximum(lefts, cells)
    return np.where(overlap > 0, overlap / ratio, 0.0)


def _area_matrix_reference(n_in: int, n_out: int) -> np.ndarray:
    """Scalar-loop INTER_AREA weights — the oracle :func:`_area_matrix`
    is exact-equality tested against."""
    ratio = n_in / n_out
    matrix = np.zeros((n_out, n_in))
    for i in range(n_out):
        left = i * ratio
        right = (i + 1) * ratio
        j_first = int(np.floor(left))
        j_last = min(int(np.ceil(right)), n_in)
        for j in range(j_first, j_last):
            overlap = min(right, j + 1) - max(left, j)
            if overlap > 0:
                matrix[i, j] = overlap / ratio
    return matrix


def _kernel_matrix(n_in: int, n_out: int, kernel: Kernel) -> np.ndarray:
    """Fixed-support convolution weights with replicated borders."""
    ratio = n_in / n_out
    centers = (np.arange(n_out) + 0.5) * ratio - 0.5
    support = kernel.support
    width = int(np.ceil(support)) * 2 + 1
    matrix = np.zeros((n_out, n_in))
    for i, x in enumerate(centers):
        j_start = int(np.floor(x)) - width // 2
        taps = np.arange(j_start, j_start + width + 1)
        weights = kernel(x - taps)
        total = weights.sum()
        if total <= 0:
            raise ScalingError(
                f"kernel {kernel.name!r} produced empty support at output {i}"
            )
        weights = weights / total
        # Replicate-border: out-of-range taps fold onto the edge pixels.
        clamped = np.clip(taps, 0, n_in - 1)
        np.add.at(matrix[i], clamped, weights)
    return matrix


@lru_cache(maxsize=512)
def scaling_matrix(n_in: int, n_out: int, algorithm: str = "bilinear") -> np.ndarray:
    """Build the 1-D coefficient matrix mapping ``n_in`` to ``n_out`` samples.

    The result has shape ``(n_out, n_in)``, every row sums to 1, and is
    cached (immutably — callers must not mutate it) because experiments
    reuse a handful of size pairs thousands of times.
    """
    if n_in <= 0 or n_out <= 0:
        raise ScalingError(f"sizes must be positive, got {n_in} -> {n_out}")
    kernel = get_kernel(algorithm)
    if kernel.name == "nearest":
        matrix = _nearest_matrix(n_in, n_out)
    elif kernel.name == "area":
        # OpenCV's INTER_AREA falls back to bilinear when enlarging.
        if n_out >= n_in:
            matrix = _kernel_matrix(n_in, n_out, get_kernel("bilinear"))
        else:
            matrix = _area_matrix(n_in, n_out)
    else:
        matrix = _kernel_matrix(n_in, n_out, kernel)
    matrix.setflags(write=False)
    return matrix


def scaling_operators(
    in_shape: tuple[int, int],
    out_shape: tuple[int, int],
    algorithm: str = "bilinear",
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(L, R)`` with ``scaled = L @ image @ R``.

    ``in_shape`` and ``out_shape`` are ``(height, width)`` pairs. ``L`` has
    shape ``(h_out, h_in)``; ``R`` has shape ``(w_in, w_out)``.
    """
    (h_in, w_in), (h_out, w_out) = in_shape, out_shape
    left = scaling_matrix(h_in, h_out, algorithm)
    right = scaling_matrix(w_in, w_out, algorithm).T
    return left, right


def coefficient_sparsity(matrix: np.ndarray, tol: float = 1e-12) -> float:
    """Fraction of source samples with (near-)zero total weight.

    A high sparsity means most source pixels never influence the output —
    the precondition for an invisible image-scaling attack.
    """
    column_weight = np.abs(matrix).sum(axis=0)
    return float(np.mean(column_weight <= tol))


def vulnerable_source_pixels(matrix: np.ndarray, tol: float = 1e-12) -> np.ndarray:
    """Indices of source samples that *do* influence the output.

    These are the pixels an attacker must modify (and the only ones a
    perfect reconstruction defense needs to sanitize).
    """
    column_weight = np.abs(matrix).sum(axis=0)
    return np.nonzero(column_weight > tol)[0]
