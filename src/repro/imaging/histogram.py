"""Color histogram utilities.

Kept as its own module because the color histogram plays a special role in
the paper's story: Xiao et al. proposed histogram comparison as a defense,
and both Quiring et al. and the Decamouflage paper observe it does not work.
The ablation benchmark ``bench_ablation_histogram`` reproduces that negative
result using these helpers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.image import as_float, ensure_image

__all__ = ["channel_histogram", "histogram_distance", "histogram_match"]


def channel_histogram(image: np.ndarray, *, bins: int = 256) -> np.ndarray:
    """Per-channel normalized intensity histogram, shape ``(C, bins)``."""
    ensure_image(image)
    img = as_float(image)
    if img.ndim == 2:
        img = img[:, :, None]
    edges = np.linspace(0.0, 256.0, bins + 1)
    rows = []
    for c in range(img.shape[2]):
        hist, _ = np.histogram(img[:, :, c], bins=edges)
        rows.append(hist / max(hist.sum(), 1))
    return np.asarray(rows)


def histogram_distance(a: np.ndarray, b: np.ndarray, *, bins: int = 256) -> float:
    """L1 distance between normalized color histograms, in ``[0, 2]``.

    Near zero for two images with the same color distribution — which is
    exactly why this fails as an attack detector: the attack perturbs few
    pixels, so histograms of ``O`` and ``A`` are nearly identical.
    """
    ha = channel_histogram(a, bins=bins)
    hb = channel_histogram(b, bins=bins)
    if ha.shape != hb.shape:
        raise ImageError("histogram_distance requires equal channel counts")
    return float(np.abs(ha - hb).sum(axis=1).mean())


def histogram_match(source: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Remap *source*'s intensities so its histogram matches *reference*'s.

    Classic rank-based histogram specification, per channel. This is the
    adaptive-attacker tool from Quiring et al.: give the hidden target the
    *cover's* color distribution before embedding it, and any
    histogram-comparison defense goes blind while the scaling attack still
    works. Returns float64 in the reference's value range.
    """
    ensure_image(source)
    ensure_image(reference)
    src = as_float(source)
    ref = as_float(reference)
    if (src.ndim == 3) != (ref.ndim == 3):
        raise ImageError("histogram_match requires matching channel structure")
    if src.ndim == 2:
        src = src[:, :, None]
        ref = ref[:, :, None]
        squeeze = True
    else:
        squeeze = False
    if src.shape[2] != ref.shape[2]:
        raise ImageError("histogram_match requires equal channel counts")

    matched = np.empty_like(src)
    for c in range(src.shape[2]):
        src_plane = src[:, :, c].ravel()
        ref_plane = ref[:, :, c].ravel()
        order = np.argsort(src_plane, kind="stable")
        ranks = np.empty_like(order)
        ranks[order] = np.arange(order.size)
        # Quantile positions of each source pixel -> reference quantiles.
        quantiles = (ranks + 0.5) / order.size
        ref_sorted = np.sort(ref_plane)
        positions = quantiles * (ref_sorted.size - 1)
        matched[:, :, c] = np.interp(
            positions, np.arange(ref_sorted.size), ref_sorted
        ).reshape(src.shape[:2])
    return matched[:, :, 0] if squeeze else matched
