"""Connected-component labeling and contour counting.

The steganalysis detector needs OpenCV's ``findContours`` only to *count*
bright blobs in a binary spectrum, so this module implements the part that
matters: 4/8-connected component labeling plus small helpers to measure and
filter the resulting regions.

The labeling is a breadth-first flood fill that visits only foreground
pixels, so its cost scales with the number of bright spectrum pixels (a few
hundred per image) rather than the image area — the steganalysis detector
must stay in the low-millisecond range (paper Table 7 reports 3 ms). The
test suite cross-checks the labeling against ``scipy.ndimage.label``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ImageError

__all__ = ["Region", "label_components", "find_regions", "count_spectrum_points"]


@dataclass(frozen=True)
class Region:
    """A connected component of a binary image."""

    label: int
    area: int
    centroid: tuple[float, float]
    bbox: tuple[int, int, int, int]  # (row_min, col_min, row_max, col_max), inclusive


_NEIGHBORS_4 = ((-1, 0), (1, 0), (0, -1), (0, 1))
_NEIGHBORS_8 = _NEIGHBORS_4 + ((-1, -1), (-1, 1), (1, -1), (1, 1))


def label_components(mask: np.ndarray, *, connectivity: int = 8) -> tuple[np.ndarray, int]:
    """Label connected ``True`` regions of a 2-D boolean mask.

    Returns ``(labels, count)`` where ``labels`` assigns 0 to background and
    ``1..count`` to components. ``connectivity`` is 4 or 8 (default 8,
    matching OpenCV contour behaviour for blob counting).
    """
    if mask.ndim != 2:
        raise ImageError(f"mask must be 2-D, got shape {mask.shape}")
    if connectivity not in (4, 8):
        raise ImageError(f"connectivity must be 4 or 8, got {connectivity}")
    mask = np.ascontiguousarray(mask, dtype=bool)
    h, w = mask.shape
    offsets = _NEIGHBORS_8 if connectivity == 8 else _NEIGHBORS_4
    labels = np.zeros((h, w), dtype=np.int64)
    count = 0
    for r0, c0 in zip(*np.nonzero(mask)):
        if labels[r0, c0]:
            continue
        count += 1
        stack = [(int(r0), int(c0))]
        labels[r0, c0] = count
        while stack:
            r, c = stack.pop()
            for dr, dc in offsets:
                nr, nc = r + dr, c + dc
                if 0 <= nr < h and 0 <= nc < w and mask[nr, nc] and not labels[nr, nc]:
                    labels[nr, nc] = count
                    stack.append((nr, nc))
    return labels, count


def find_regions(mask: np.ndarray, *, connectivity: int = 8, min_area: int = 1) -> list[Region]:
    """Return :class:`Region` records for each component with ``area >= min_area``."""
    labels, count = label_components(mask, connectivity=connectivity)
    if count == 0:
        return []
    rows_all, cols_all = np.nonzero(labels)
    values = labels[rows_all, cols_all]
    regions: list[Region] = []
    for lbl in range(1, count + 1):
        member = values == lbl
        rows, cols = rows_all[member], cols_all[member]
        area = rows.size
        if area < min_area:
            continue
        regions.append(
            Region(
                label=lbl,
                area=int(area),
                centroid=(float(rows.mean()), float(cols.mean())),
                bbox=(int(rows.min()), int(cols.min()), int(rows.max()), int(cols.max())),
            )
        )
    return regions


def count_spectrum_points(mask: np.ndarray, *, min_area: int = 1) -> int:
    """Number of bright blobs in a binary spectrum (the paper's CSP count).

    ``min_area`` discards single-pixel specks that survive thresholding but
    are not genuine spectral peaks.
    """
    return len(find_regions(mask, connectivity=8, min_area=min_area))
