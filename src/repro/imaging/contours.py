"""Connected-component labeling and contour counting.

The steganalysis detector needs OpenCV's ``findContours`` only to *count*
bright blobs in a binary spectrum, so this module implements the part that
matters: 4/8-connected component labeling plus small helpers to measure and
filter the resulting regions.

Labeling decomposes the mask into row runs (maximal horizontal segments of
foreground pixels, found with one vectorized ``np.diff``), connects runs in
adjacent rows with two global ``searchsorted`` passes, and merges them with
a union-find over the run graph — so the cost scales with the number of
*runs*, not pixels, and the per-pixel Python loop of the original
breadth-first flood fill is gone. Component numbering still follows the
row-major order of each component's first pixel, so the labels are
**bit-identical** to the BFS (kept as :func:`label_components_bfs`, the
test oracle; the suite also cross-checks against ``scipy.ndimage.label``).

:func:`find_regions` aggregates area/centroid/bbox directly over the runs
with ``np.bincount`` instead of rescanning the label image once per label.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ImageError

__all__ = [
    "Region",
    "label_components",
    "label_components_bfs",
    "label_runs",
    "find_regions",
    "region_stats_from_runs",
    "region_stats_from_points",
    "count_spectrum_points",
]


@dataclass(frozen=True)
class Region:
    """A connected component of a binary image."""

    label: int
    area: int
    centroid: tuple[float, float]
    bbox: tuple[int, int, int, int]  # (row_min, col_min, row_max, col_max), inclusive


_NEIGHBORS_4 = ((-1, 0), (1, 0), (0, -1), (0, 1))
_NEIGHBORS_8 = _NEIGHBORS_4 + ((-1, -1), (-1, 1), (1, -1), (1, 1))


def _check_mask(mask: np.ndarray, connectivity: int) -> np.ndarray:
    if mask.ndim != 2:
        raise ImageError(f"mask must be 2-D, got shape {mask.shape}")
    if connectivity not in (4, 8):
        raise ImageError(f"connectivity must be 4 or 8, got {connectivity}")
    return np.ascontiguousarray(mask, dtype=bool)


def label_runs(
    mask: np.ndarray, *, connectivity: int = 8
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Row-run decomposition of a binary mask with component ids per run.

    Returns ``(rows, starts, ends, components, count)``: run ``i`` spans
    ``mask[rows[i], starts[i]:ends[i]+1]`` (ends inclusive, runs in
    row-major order) and belongs to component ``components[i]`` in
    ``1..count``. Components are numbered by the row-major position of
    their first pixel — the same order the BFS assigns — so scattering
    ``components`` back over the runs reproduces its labels exactly.

    This is the vectorized core shared by :func:`label_components`,
    :func:`find_regions`, and the fast spectrum path in
    :mod:`repro.imaging.plans`.
    """
    mask = _check_mask(mask, connectivity)
    h, w = mask.shape
    if mask.size == 0 or not mask.any():
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), empty.copy(), 0

    # Zero-pad one column on each side so every run's start and end show up
    # as a +1/-1 transition in the flattened difference — including runs
    # touching the borders, and without transitions leaking across rows.
    stride = w + 2
    padded = np.zeros((h, stride), dtype=np.int8)
    padded[:, 1:-1] = mask
    flat = padded.ravel()
    delta = np.diff(flat)
    starts_flat = np.nonzero(delta == 1)[0] + 1
    ends_flat = np.nonzero(delta == -1)[0]
    rows = starts_flat // stride
    starts = starts_flat % stride - 1
    ends = ends_flat % stride - 1
    n_runs = rows.shape[0]

    # Connect each run to the runs of the previous row it touches. A run
    # [s, e] in row r touches a run [s', e'] in row r-1 when the column
    # intervals overlap after widening by ``reach`` (1 for 8-connectivity's
    # diagonals, 0 for 4). Keying runs as row*stride + column keeps the
    # per-row segments disjoint, so two global searchsorted passes find
    # every neighbor range at once.
    reach = 1 if connectivity == 8 else 0
    key_start = rows * stride + starts
    key_end = rows * stride + ends
    lo = np.searchsorted(key_end, (rows - 1) * stride + starts - reach, side="left")
    hi = np.searchsorted(key_start, (rows - 1) * stride + ends + reach, side="right")
    counts = hi - lo

    parent = list(range(n_runs))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    if counts.any():
        left = np.repeat(np.arange(n_runs, dtype=np.int64), counts)
        # right = concatenation of arange(lo[i], hi[i]) for every run i.
        block_starts = np.cumsum(counts) - counts
        right = (
            np.arange(left.shape[0], dtype=np.int64)
            + np.repeat(lo - block_starts, counts)
        )
        for a, b in zip(left.tolist(), right.tolist()):
            ra, rb = find(a), find(b)
            if ra != rb:
                if ra < rb:
                    parent[rb] = ra
                else:
                    parent[ra] = rb

    components = np.empty(n_runs, dtype=np.int64)
    remap: dict[int, int] = {}
    for index in range(n_runs):
        root = find(index)
        component = remap.get(root)
        if component is None:
            component = len(remap) + 1
            remap[root] = component
        components[index] = component
    return rows, starts, ends, components, len(remap)


def label_components(mask: np.ndarray, *, connectivity: int = 8) -> tuple[np.ndarray, int]:
    """Label connected ``True`` regions of a 2-D boolean mask.

    Returns ``(labels, count)`` where ``labels`` assigns 0 to background and
    ``1..count`` to components. ``connectivity`` is 4 or 8 (default 8,
    matching OpenCV contour behaviour for blob counting). Labels are
    bit-identical to :func:`label_components_bfs`.
    """
    mask = _check_mask(mask, connectivity)
    rows, starts, ends, components, count = label_runs(mask, connectivity=connectivity)
    labels = np.zeros(mask.shape, dtype=np.int64)
    for row, start, end, component in zip(
        rows.tolist(), starts.tolist(), ends.tolist(), components.tolist()
    ):
        labels[row, start : end + 1] = component
    return labels, count


def label_components_bfs(
    mask: np.ndarray, *, connectivity: int = 8
) -> tuple[np.ndarray, int]:
    """Reference breadth-first labeling (the pre-vectorization algorithm).

    Kept as the oracle the property tests compare :func:`label_components`
    against: same signature, same label order, O(foreground pixels) Python
    flood fill.
    """
    mask = _check_mask(mask, connectivity)
    h, w = mask.shape
    offsets = _NEIGHBORS_8 if connectivity == 8 else _NEIGHBORS_4
    labels = np.zeros((h, w), dtype=np.int64)
    count = 0
    for r0, c0 in zip(*np.nonzero(mask)):
        if labels[r0, c0]:
            continue
        count += 1
        stack = [(int(r0), int(c0))]
        labels[r0, c0] = count
        while stack:
            r, c = stack.pop()
            for dr, dc in offsets:
                nr, nc = r + dr, c + dc
                if 0 <= nr < h and 0 <= nc < w and mask[nr, nc] and not labels[nr, nc]:
                    labels[nr, nc] = count
                    stack.append((nr, nc))
    return labels, count


def region_stats_from_runs(
    rows: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    components: np.ndarray,
    count: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-component ``(areas, row_sums, col_sums, bboxes)`` over run data.

    ``areas`` and the centroid sums come from ``np.bincount`` over the
    runs; ``bboxes`` is ``(count, 4)`` int64 rows of
    ``(row_min, col_min, row_max, col_max)``. Index ``i`` describes
    component ``i + 1``. All sums are integer-valued and well below 2**53,
    so the float64 accumulation is exact — centroids computed from them
    equal the per-pixel means bit for bit.
    """
    lengths = ends - starts + 1
    sums = np.bincount(components, weights=lengths, minlength=count + 1)
    areas = sums[1:].astype(np.int64)
    row_sums = np.bincount(components, weights=rows * lengths, minlength=count + 1)[1:]
    col_sums = np.bincount(
        components, weights=(starts + ends) * (lengths / 2.0), minlength=count + 1
    )[1:]
    bboxes = np.empty((count, 4), dtype=np.int64)
    row_min = np.full(count + 1, np.iinfo(np.int64).max, dtype=np.int64)
    col_min = row_min.copy()
    row_max = np.full(count + 1, -1, dtype=np.int64)
    col_max = row_max.copy()
    np.minimum.at(row_min, components, rows)
    np.minimum.at(col_min, components, starts)
    np.maximum.at(row_max, components, rows)
    np.maximum.at(col_max, components, ends)
    bboxes[:, 0] = row_min[1:]
    bboxes[:, 1] = col_min[1:]
    bboxes[:, 2] = row_max[1:]
    bboxes[:, 3] = col_max[1:]
    return areas, row_sums, col_sums, bboxes


def region_stats_from_points(
    rows: np.ndarray, cols: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """8-connected component stats for a sparse row-major point list.

    *rows*/*cols* must be non-empty and sorted by ``(row, col)`` —
    ``np.nonzero`` order. Returns the same ``(areas, row_sums, col_sums,
    bboxes)`` arrays that :func:`label_runs` + :func:`region_stats_from_runs`
    produce for the equivalent dense mask (components numbered by first
    run in row-major order, accumulation in the same run order, so the
    floats match bit for bit) while touching only the points: the
    fast-CSP path labels a few hundred bright spectrum bins without
    materializing a mask, and the per-call cost scales with the point
    count instead of paying the dense labeler's fixed overhead.
    """
    # One pure-Python pass builds the runs: at fast-CSP point counts (a
    # few hundred) the interpreter loop undercuts the fixed cost of the
    # half-dozen small-array numpy calls a vectorized scan would need.
    run_rows: list[int] = []
    run_c0: list[int] = []
    run_c1: list[int] = []
    prev_row = prev_col = None
    for row, col in zip(np.asarray(rows).tolist(), np.asarray(cols).tolist()):
        if row == prev_row and col == prev_col + 1:
            run_c1[-1] = col
        else:
            run_rows.append(row)
            run_c0.append(col)
            run_c1.append(col)
        prev_row, prev_col = row, col
    n_runs = len(run_rows)
    parent = list(range(n_runs))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    row_first: dict[int, int] = {}
    for index, row in enumerate(run_rows):
        row_first.setdefault(row, index)
    for index in range(n_runs):
        above = row_first.get(run_rows[index] - 1)
        if above is None:
            continue
        low = run_c0[index] - 1
        high = run_c1[index] + 1
        k = above
        while k < index and run_rows[k] == run_rows[index] - 1 and run_c0[k] <= high:
            if run_c1[k] >= low:
                # Smaller run index wins the union, so every component's
                # root stays its first run — numbering below then matches
                # the dense labeler's first-run order.
                root_a, root_b = find(index), find(k)
                if root_a != root_b:
                    parent[max(root_a, root_b)] = min(root_a, root_b)
            k += 1

    component = [0] * n_runs
    count = 0
    areas: list[int] = []
    row_sums: list[int] = []
    col_sums: list[float] = []
    bbox: list[list[int]] = []
    for index in range(n_runs):
        root = find(index)
        if root == index:
            component[index] = count
            count += 1
            areas.append(0)
            row_sums.append(0)
            col_sums.append(0.0)
            bbox.append([run_rows[index], run_c0[index], run_rows[index], run_c1[index]])
        else:
            component[index] = component[root]
        comp = component[index]
        length = run_c1[index] - run_c0[index] + 1
        areas[comp] += length
        row_sums[comp] += run_rows[index] * length
        col_sums[comp] += (run_c0[index] + run_c1[index]) * (length / 2.0)
        box = bbox[comp]
        if run_rows[index] < box[0]:
            box[0] = run_rows[index]
        if run_c0[index] < box[1]:
            box[1] = run_c0[index]
        if run_rows[index] > box[2]:
            box[2] = run_rows[index]
        if run_c1[index] > box[3]:
            box[3] = run_c1[index]
    return (
        np.array(areas, dtype=np.int64),
        np.array(row_sums, dtype=np.float64),
        np.array(col_sums, dtype=np.float64),
        np.array(bbox, dtype=np.int64).reshape(count, 4),
    )


def find_regions(mask: np.ndarray, *, connectivity: int = 8, min_area: int = 1) -> list[Region]:
    """Return :class:`Region` records for each component with ``area >= min_area``."""
    rows, starts, ends, components, count = label_runs(mask, connectivity=connectivity)
    if count == 0:
        return []
    areas, row_sums, col_sums, bboxes = region_stats_from_runs(
        rows, starts, ends, components, count
    )
    regions: list[Region] = []
    for index in range(count):
        area = int(areas[index])
        if area < min_area:
            continue
        regions.append(
            Region(
                label=index + 1,
                area=area,
                centroid=(float(row_sums[index] / area), float(col_sums[index] / area)),
                bbox=tuple(int(v) for v in bboxes[index]),
            )
        )
    return regions


def count_spectrum_points(mask: np.ndarray, *, min_area: int = 1) -> int:
    """Number of bright blobs in a binary spectrum (the paper's CSP count).

    ``min_area`` discards single-pixel specks that survive thresholding but
    are not genuine spectral peaks.
    """
    return len(find_regions(mask, connectivity=8, min_area=min_area))
