"""Benign image transforms.

Small photometric and geometric operations a benign pipeline might apply
*after* an attacker crafts their image (re-encoding, brightness tweaks,
crops…). Used by the robustness ablation to answer two deployment
questions:

* does Decamouflage still flag attack images after common benign
  post-processing (it should — and mild transforms also tend to *break*
  the attack itself, which is worth knowing);
* do benign transforms make clean images look like attacks (false alarms)?

All transforms take and return float64 images on the 0–255 scale.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.image import as_float, clip_pixels, ensure_image

__all__ = [
    "adjust_brightness",
    "adjust_contrast",
    "add_gaussian_noise",
    "quantize",
    "flip_horizontal",
    "flip_vertical",
    "rotate90",
    "center_crop",
]


def adjust_brightness(image: np.ndarray, delta: float) -> np.ndarray:
    """Add *delta* to every pixel, clipped to the valid range."""
    return clip_pixels(as_float(image) + delta)


def adjust_contrast(image: np.ndarray, factor: float) -> np.ndarray:
    """Scale deviations from the image mean by *factor* (>1 = more contrast)."""
    if factor < 0:
        raise ImageError(f"contrast factor must be >= 0, got {factor}")
    img = as_float(image)
    mean = img.mean()
    return clip_pixels(mean + factor * (img - mean))


def add_gaussian_noise(image: np.ndarray, sigma: float, *, seed: int = 0) -> np.ndarray:
    """Add zero-mean Gaussian sensor noise (deterministic by seed)."""
    if sigma < 0:
        raise ImageError(f"noise sigma must be >= 0, got {sigma}")
    rng = np.random.default_rng(seed)
    img = as_float(image)
    return clip_pixels(img + rng.normal(0.0, sigma, img.shape))


def quantize(image: np.ndarray, levels: int = 256) -> np.ndarray:
    """Round to *levels* uniform intensity levels (re-encoding loss model)."""
    if not 2 <= levels <= 256:
        raise ImageError(f"levels must be in [2, 256], got {levels}")
    img = as_float(image)
    step = 255.0 / (levels - 1)
    return np.rint(img / step) * step


def flip_horizontal(image: np.ndarray) -> np.ndarray:
    """Mirror left-right."""
    ensure_image(image)
    return as_float(image)[:, ::-1].copy()


def flip_vertical(image: np.ndarray) -> np.ndarray:
    """Mirror top-bottom."""
    ensure_image(image)
    return as_float(image)[::-1].copy()


def rotate90(image: np.ndarray, turns: int = 1) -> np.ndarray:
    """Rotate by 90° × *turns* counterclockwise."""
    ensure_image(image)
    return np.rot90(as_float(image), k=turns, axes=(0, 1)).copy()


def center_crop(image: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Crop the central ``shape`` region."""
    ensure_image(image)
    img = as_float(image)
    h, w = img.shape[:2]
    ch, cw = shape
    if ch > h or cw > w or ch <= 0 or cw <= 0:
        raise ImageError(f"cannot crop {shape} from {img.shape[:2]}")
    r0 = (h - ch) // 2
    c0 = (w - cw) // 2
    return img[r0 : r0 + ch, c0 : c0 + cw].copy()
