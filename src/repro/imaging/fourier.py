"""Frequency-domain analysis (Method 3 substrate).

The steganalysis detector works on the *centered log-magnitude spectrum* of
an image (paper Eqs. 2–4): a 2-D DFT, shifted so the DC/low frequencies sit
at the center, log-compressed, and normalized to 0–255. A radial low-pass
mask (paper Eq. 7) then isolates the bright low-frequency region, and the
binarized result is handed to contour counting.

A benign natural image concentrates its energy in one central blob. An
image-scaling attack perturbs the source image on a regular grid (every
``ratio``-th pixel per axis), which adds periodic components — extra bright
peaks at the grid's harmonic frequencies. Counting those peaks is the whole
detection signal.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError
from repro.imaging.color import to_grayscale
from repro.imaging.image import ensure_image
from repro.imaging.plans import get_spectrum_geometry

__all__ = [
    "centered_spectrum",
    "log_spectrum_image",
    "radial_lowpass_mask",
    "binary_spectrum",
    "csp_count",
    "csp_count_from_spectrum",
]


def centered_spectrum(image: np.ndarray) -> np.ndarray:
    """Centered DFT magnitude of the luma plane (float64, unnormalized)."""
    ensure_image(image)
    gray = to_grayscale(image)
    spectrum = np.fft.fftshift(np.fft.fft2(gray))
    return np.abs(spectrum)


def log_spectrum_image(image: np.ndarray) -> np.ndarray:
    """Centered log-magnitude spectrum scaled to the 0–255 range.

    Implements paper Eq. 4: ``log(1 + |F_shifted|)`` followed by min–max
    normalization so a single brightness threshold works across images.
    """
    magnitude = centered_spectrum(image)
    log_mag = np.log1p(magnitude)
    low, high = float(log_mag.min()), float(log_mag.max())
    if high - low <= 0:
        # Constant image: spectrum is a single DC spike; return all-zero
        # so downstream binarization sees exactly one (empty) region.
        return np.zeros_like(log_mag)
    return (log_mag - low) / (high - low) * 255.0


def radial_lowpass_mask(shape: tuple[int, int], radius: float) -> np.ndarray:
    """Boolean disk of ``True`` inside ``radius`` of the spectrum center.

    Paper Eq. 7: ``H(u, v) = 1`` iff ``D(u, v) <= D_T``. The center matches
    ``fftshift``'s DC location (``n // 2``).
    """
    if radius <= 0:
        raise ImageError(f"low-pass radius must be positive, got {radius}")
    h, w = shape
    rows = np.arange(h) - h // 2
    cols = np.arange(w) - w // 2
    dist_sq = rows[:, None] ** 2 + cols[None, :] ** 2
    return dist_sq <= radius * radius


def binary_spectrum(
    image: np.ndarray,
    *,
    brightness_threshold: float = 160.0,
    lowpass_radius_fraction: float = 0.5,
    spectrum: np.ndarray | None = None,
) -> np.ndarray:
    """Binarized low-frequency spectrum — input to contour counting.

    Pipeline (paper Fig. 7): centered log spectrum → radial low-pass →
    brightness threshold. ``brightness_threshold`` is on the normalized
    0–255 spectrum scale; ``lowpass_radius_fraction`` sets ``D_T`` relative
    to the smaller image half-extent so the same setting works across image
    sizes. Pass *spectrum* (the image's :func:`log_spectrum_image`) to
    reuse an already-computed spectrum instead of re-deriving it.
    """
    if spectrum is None:
        spectrum = log_spectrum_image(image)
    h, w = spectrum.shape
    mask = get_spectrum_geometry((h, w), lowpass_radius_fraction).mask
    return (spectrum >= brightness_threshold) & mask


def csp_count(
    image: np.ndarray,
    *,
    brightness_threshold: float = 160.0,
    lowpass_radius_fraction: float = 0.5,
    inner_radius_fraction: float = 0.09,
    min_area: int = 2,
    min_prominence: float = 35.0,
) -> int:
    """Number of centered spectrum points (the paper's CSP metric).

    A benign image contributes exactly one point: the central low-frequency
    blob (together with its immediate satellites — large-scale scene
    structure puts secondary maxima right next to DC, so everything inside
    ``inner_radius_fraction * min(h, w)`` of the center is counted as the
    single centered point). A scaling attack perturbs the source on a
    regular grid with period ≈ the downscale ratio, which adds sharp peaks
    at the grid frequency ``min(h, w) / ratio`` and its harmonics — well
    outside the inner radius. Each such outer blob counts as an extra
    spectrum point, so benign images score 1 and attack images ≥ 3
    (peak pairs are symmetric).

    An outer blob only counts when its peak brightness exceeds the median
    spectrum brightness at its own radius by ``min_prominence``: natural
    spectra decay smoothly, so genuine image structure (e.g. interference
    fringes from parallel edges) rides on an elevated background, while
    attack-grid peaks tower over theirs.

    The defaults detect ratios from ~2.2 up to ~11; for more extreme
    ratios, lower ``inner_radius_fraction`` accordingly.
    """
    return csp_count_from_spectrum(
        log_spectrum_image(image),
        brightness_threshold=brightness_threshold,
        lowpass_radius_fraction=lowpass_radius_fraction,
        inner_radius_fraction=inner_radius_fraction,
        min_area=min_area,
        min_prominence=min_prominence,
    )


def csp_count_from_spectrum(
    spectrum: np.ndarray,
    *,
    brightness_threshold: float = 160.0,
    lowpass_radius_fraction: float = 0.5,
    inner_radius_fraction: float = 0.09,
    min_area: int = 2,
    min_prominence: float = 35.0,
) -> int:
    """:func:`csp_count` on a precomputed :func:`log_spectrum_image`.

    The spectrum is the expensive part of the CSP metric (one FFT per
    image); callers that already hold it — the shared analysis context, or
    figure code that also renders the spectrum — use this entry point so
    the counting logic runs without re-deriving it.
    """
    # Import here to avoid an import cycle (contours has no dependency on
    # fourier, but keeping the public imaging namespace flat needs this).
    from repro.imaging.contours import find_regions

    h, w = spectrum.shape
    # The mask and the radial-distance grid depend only on the spectrum
    # shape; both come from the per-shape geometry cache (hit rates in
    # ``pipeline.stats``) instead of being rebuilt per call.
    geometry = get_spectrum_geometry((h, w), lowpass_radius_fraction)
    binary = (spectrum >= brightness_threshold) & geometry.mask

    center = np.array([h // 2, w // 2], dtype=np.float64)
    inner_radius = inner_radius_fraction * min(h, w)
    regions = [
        region
        for region in find_regions(binary, min_area=min_area)
        if float(np.hypot(*(np.array(region.centroid) - center))) > inner_radius
    ]
    if not regions:
        return 1

    radial = geometry.radial
    outer = 0
    for region in regions:
        distance = float(np.hypot(*(np.array(region.centroid) - center)))
        r0, c0, r1, c1 = region.bbox
        peak = float(spectrum[r0 : r1 + 1, c0 : c1 + 1].max())
        annulus = spectrum[(radial > distance - 3.0) & (radial < distance + 3.0)]
        background = float(np.median(annulus)) if annulus.size else 0.0
        if peak - background >= min_prominence:
            outer += 1
    return 1 + outer
