"""Test-only runtime instrumentation.

Nothing in this package is imported by the serving or detection paths;
it exists for the test suite and CI. The one resident is
:mod:`repro.testing.locksan`, the runtime lock-order sanitizer that
cross-checks the static lock-acquisition model built by
``tools/analyze`` (see docs/static-analysis.md).
"""

from __future__ import annotations

__all__ = ["locksan"]
