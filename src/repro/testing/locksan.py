"""Runtime lock-order sanitizer: the dynamic half of the deadlock check.

``tools/analyze`` builds a *static* lock-acquisition-order graph over
every ``self.<attr> = threading.Lock()`` in the tree (the ``lock-order``
project pass). This module builds the *runtime* graph for the same locks
by wrapping ``threading.Lock`` / ``RLock`` / ``Condition`` construction
while a test suite runs, then the two are reconciled by
``tools/analyze.py --locksan-check DUMP.json``: every observed nesting
must appear in the static graph or in the contract file's
``runtime_only`` list, and the observed graph must be acyclic.

Design constraints:

* **Zero overhead when off.** Nothing is patched until :func:`install`
  runs; production code never imports this module.
* **Only project locks are wrapped.** The construction site (first stack
  frame outside this file and ``threading.py``) must satisfy the site
  filter — by default, live under ``src/repro``. Stdlib and third-party
  locks get the real factory objects, untouched, so wrapping cannot
  perturb ``concurrent.futures``, ``logging``, or numpy internals.
* **Reentrancy-aware.** Re-acquiring a lock already held by the current
  thread (RLock, Condition re-entry) records no edge and no duplicate
  stack entry; ``Condition.wait`` pops the lock for the duration of the
  wait, exactly mirroring what the real primitive does.

The dump schema (``schema_version`` 1)::

    {"schema_version": 1,
     "locks":  [{"id": 3, "kind": "Lock", "file": "/abs/path.py",
                 "line": 126, "acquisitions": 42}],
     "edges":  [{"from": 1, "to": 3, "count": 7}],
     "cycles": [[1, 3]]}

Typical wiring (tests/conftest.py does this when ``REPRO_LOCKSAN=1``)::

    locksan.install()
    ... run suites ...
    report = locksan.snapshot()
    locksan.dump(Path(os.environ["REPRO_LOCKSAN_OUT"]))
    locksan.uninstall()
    assert not report["cycles"]
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "install",
    "installed",
    "uninstall",
    "reset",
    "snapshot",
    "dump",
    "default_site_filter",
]

SCHEMA_VERSION = 1

_THIS_FILE = str(Path(__file__).resolve())
_REPRO_ROOT = str(Path(__file__).resolve().parents[1])  # .../src/repro

# Real factories, captured at import — patching swaps the *module
# attributes*, so these stay usable for our own plumbing and for
# construction sites the filter rejects.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition


def default_site_filter(filename: str) -> bool:
    """Wrap only locks constructed inside ``src/repro``."""
    return filename.startswith(_REPRO_ROOT + "/") or filename.startswith(
        _REPRO_ROOT + "\\"
    )


class _Registry:
    """All observed locks, acquisition counts, and ordered-pair edges.

    Guarded by a *real* (unwrapped) lock so the sanitizer's own
    bookkeeping can never appear in its own graph.
    """

    def __init__(self) -> None:
        self._guard = _REAL_LOCK()
        self._next_id = 0
        self.locks: dict[int, dict] = {}
        self.edges: dict[tuple[int, int], int] = {}
        self._held = threading.local()

    # -- registration ------------------------------------------------------

    def register(self, kind: str, file: str, line: int) -> int:
        with self._guard:
            lock_id = self._next_id
            self._next_id += 1
            self.locks[lock_id] = {
                "id": lock_id,
                "kind": kind,
                "file": file,
                "line": line,
                "acquisitions": 0,
            }
            return lock_id

    # -- per-thread held stack ---------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def acquired(self, lock_id: int) -> None:
        """Record a successful acquisition by the current thread."""
        stack = self._stack()
        with self._guard:
            self.locks[lock_id]["acquisitions"] += 1
            if lock_id in stack:
                # Reentrant re-acquire: no new edges, no duplicate entry —
                # release() pops by value, so the single entry suffices.
                return
            for held in stack:
                key = (held, lock_id)
                self.edges[key] = self.edges.get(key, 0) + 1
        stack.append(lock_id)

    def released(self, lock_id: int) -> None:
        stack = self._stack()
        if lock_id in stack:
            stack.remove(lock_id)

    def holding(self, lock_id: int) -> bool:
        return lock_id in self._stack()

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        with self._guard:
            locks = [dict(info) for info in self.locks.values()]
            edges = [
                {"from": a, "to": b, "count": count}
                for (a, b), count in sorted(self.edges.items())
            ]
        adjacency: dict[int, set[int]] = {lock["id"]: set() for lock in locks}
        for edge in edges:
            adjacency.setdefault(edge["from"], set()).add(edge["to"])
            adjacency.setdefault(edge["to"], set())
        return {
            "schema_version": SCHEMA_VERSION,
            "locks": sorted(locks, key=lambda lock: lock["id"]),
            "edges": edges,
            "cycles": _find_cycles(adjacency),
        }


def _find_cycles(adjacency: dict[int, set[int]]) -> list[list[int]]:
    """Strongly connected components with more than one node (iterative)."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = [0]
    sccs: list[list[int]] = []

    for root in sorted(adjacency):
        if root in index:
            continue
        work = [(root, iter(sorted(adjacency.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, neighbors = work[-1]
            advanced = False
            for nxt in neighbors:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adjacency.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                low[work[-1][0]] = min(low[work[-1][0]], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))
    return sorted(sccs)


def _construction_site() -> tuple[str, int] | None:
    """Construction site: the first stack frame outside this module.

    If that frame is ``threading.py`` itself, the construction is a
    primitive's *internal* plumbing (``Condition()`` building its own
    RLock, ``Thread`` building its started event) — return ``None`` so
    the internal lock stays real and only the outer object is tracked.
    """
    frame = sys._getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename == _THIS_FILE:
            frame = frame.f_back
            continue
        if filename.endswith("threading.py"):
            return None
        return str(Path(filename).resolve()), frame.f_lineno
    return None


class _SanLock:
    """Tracking proxy over a real Lock/RLock: same blocking semantics,
    plus held-stack bookkeeping on every successful acquire/release."""

    __slots__ = ("_real", "_san_id", "_registry")

    def __init__(self, real, san_id: int, registry: _Registry) -> None:
        self._real = real
        self._san_id = san_id
        self._registry = registry

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._real.acquire(blocking, timeout)
        if got:
            self._registry.acquired(self._san_id)
        return got

    def release(self) -> None:
        self._real.release()
        self._registry.released(self._san_id)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self._real.locked()

    def __getattr__(self, name: str):
        return getattr(self._real, name)

    def __repr__(self) -> str:
        return f"<locksan #{self._san_id} {self._real!r}>"


class _SanCondition:
    """Tracking proxy over a real Condition.

    ``wait``/``wait_for`` release the underlying lock for the duration of
    the wait, so the held-stack entry is popped before blocking and
    re-pushed (with fresh edges from the current outer locks) on wake —
    the graph sees exactly what other threads can observe.
    """

    __slots__ = ("_real", "_san_id", "_registry")

    def __init__(self, real, san_id: int, registry: _Registry) -> None:
        self._real = real
        self._san_id = san_id
        self._registry = registry

    def acquire(self, *args) -> bool:
        got = self._real.acquire(*args)
        if got:
            self._registry.acquired(self._san_id)
        return got

    def release(self) -> None:
        self._real.release()
        self._registry.released(self._san_id)

    def __enter__(self):
        self._real.__enter__()
        self._registry.acquired(self._san_id)
        return self

    def __exit__(self, *exc) -> None:
        self._real.__exit__(*exc)
        self._registry.released(self._san_id)

    def wait(self, timeout: float | None = None) -> bool:
        self._registry.released(self._san_id)
        try:
            return self._real.wait(timeout)
        finally:
            self._registry.acquired(self._san_id)

    def wait_for(self, predicate, timeout: float | None = None):
        self._registry.released(self._san_id)
        try:
            return self._real.wait_for(predicate, timeout)
        finally:
            self._registry.acquired(self._san_id)

    def notify(self, n: int = 1) -> None:
        self._real.notify(n)

    def notify_all(self) -> None:
        self._real.notify_all()

    def __getattr__(self, name: str):
        return getattr(self._real, name)

    def __repr__(self) -> str:
        return f"<locksan #{self._san_id} {self._real!r}>"


# -- install / uninstall ---------------------------------------------------

_state: dict | None = None


def installed() -> bool:
    return _state is not None


def install(site_filter=default_site_filter) -> None:
    """Patch ``threading.Lock/RLock/Condition`` with tracking factories.

    Idempotent. Locks constructed *before* install are invisible — wire
    this up before the code under test builds its servers.
    """
    global _state
    if _state is not None:
        return
    registry = _Registry()

    def make_factory(kind: str, real_factory, proxy):
        def factory(*args, **kwargs):
            site = _construction_site()
            if site is None or not site_filter(site[0]):
                return real_factory(*args, **kwargs)
            lock_id = registry.register(kind, site[0], site[1])
            return proxy(real_factory(*args, **kwargs), lock_id, registry)

        factory.__name__ = f"locksan_{kind}"
        return factory

    patched = {
        "Lock": make_factory("Lock", _REAL_LOCK, _SanLock),
        "RLock": make_factory("RLock", _REAL_RLOCK, _SanLock),
        "Condition": make_factory("Condition", _REAL_CONDITION, _SanCondition),
    }
    for name, factory in patched.items():
        setattr(threading, name, factory)
    _state = {"registry": registry}


def uninstall() -> None:
    """Restore the real factories. Already-wrapped locks keep tracking
    into the (now frozen) registry; new constructions are untouched."""
    global _state
    if _state is None:
        return
    threading.Lock = _REAL_LOCK
    threading.RLock = _REAL_RLOCK
    threading.Condition = _REAL_CONDITION
    _state = None


def reset() -> None:
    """Drop all recorded locks and edges (keeps the patch installed)."""
    if _state is not None:
        _state["registry"] = _Registry()


def _registry() -> _Registry:
    if _state is None:
        raise RuntimeError("locksan is not installed")
    return _state["registry"]


def snapshot() -> dict:
    """The current observed graph as a schema-versioned dict."""
    return _registry().snapshot()


def dump(path: str | Path) -> dict:
    """Write :func:`snapshot` to *path* as JSON; returns the snapshot."""
    report = snapshot()
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report
