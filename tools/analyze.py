#!/usr/bin/env python3
"""CLI entry point for the repo's static-analysis framework.

Usage::

    python tools/analyze.py                       # src tools benchmarks
    python tools/analyze.py src --rules api-surface --format json
    python tools/analyze.py --list-rules

See ``docs/static-analysis.md`` for the passes, the invariants they
encode, and the suppression/baseline workflow. The implementation lives
in the ``tools/analyze/`` package; this file only bootstraps ``sys.path``
so the package resolves when invoked as a script from the repo root.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analyze.cli import main  # noqa: E402  (path bootstrap must run first)

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
