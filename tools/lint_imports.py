#!/usr/bin/env python3
"""Stdlib-only AST lint: unused imports and incomplete ``__all__`` lists.

Two rules, applied to every ``.py`` file under the given paths (default:
``src``, ``tools``, ``benchmarks``):

* **unused-import** — a module-level or function-level import whose bound
  name is never used. Uses include attribute chains, decorators, type
  annotations (the repo uses ``from __future__ import annotations``, so
  annotations stay ordinary expressions in the AST), ``__all__`` entries,
  and bare string references inside ``__all__``.
* **missing-from-all** — a module that declares ``__all__`` but binds a
  public (non-underscore) name at module level that the list omits.
  Imported names are exempt (re-exports are opt-in); modules without an
  ``__all__`` are skipped entirely.

Exit status is the number of offending files (0 = clean), so CI can run
it directly. No third-party dependencies.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_PATHS = ("src", "tools", "benchmarks")


def _imported_names(node: ast.Import | ast.ImportFrom) -> list[tuple[str, str]]:
    """(bound name, display name) pairs an import statement introduces."""
    pairs = []
    for alias in node.names:
        if alias.name == "*":
            continue
        bound = alias.asname or alias.name.split(".")[0]
        pairs.append((bound, alias.asname or alias.name))
    return pairs


def _used_names(tree: ast.AST) -> set[str]:
    """Every identifier the module loads anywhere (all scopes).

    Attribute chains like ``pkg.mod.attr`` are covered by their root
    ``ast.Name`` child, and annotations are ordinary expressions here
    because the repo uses ``from __future__ import annotations``.
    """
    return {
        node.id
        for node in ast.walk(tree)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def _dunder_all(tree: ast.Module) -> tuple[list[str] | None, set[str]]:
    """(declared __all__ or None, names listed in it)."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    return None, set()
                names = [str(item) for item in value]
                return names, set(names)
    return None, set()


def _public_module_bindings(tree: ast.Module) -> set[str]:
    """Public names bound by module-level statements (not imports)."""
    public: set[str] = set()

    def add(name: str) -> None:
        if not name.startswith("_"):
            public.add(name)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            add(element.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                add(node.target.id)
    return public


def lint_file(path: Path) -> list[str]:
    """Human-readable findings for one file (empty = clean)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    used = _used_names(tree)
    all_names, all_set = _dunder_all(tree)
    findings = []

    for node in ast.walk(tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        for bound, display in _imported_names(node):
            if bound in used or bound in all_set:
                continue
            findings.append(f"{path}:{node.lineno}: unused import '{display}'")

    if all_names is not None:
        missing = sorted(_public_module_bindings(tree) - all_set - {"__all__"})
        for name in missing:
            findings.append(f"{path}: public name '{name}' missing from __all__")
    return findings


def main(argv: list[str]) -> int:
    roots = [Path(arg) for arg in argv] or [Path(p) for p in DEFAULT_PATHS]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.py")))
    dirty = 0
    for path in files:
        findings = lint_file(path)
        if findings:
            dirty += 1
            print("\n".join(findings))
    if dirty:
        print(f"\n{dirty} file(s) with findings", file=sys.stderr)
    return dirty


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
