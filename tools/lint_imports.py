#!/usr/bin/env python3
"""Thin compatibility shim: the import lint moved into the analysis framework.

The unused-import and ``__all__``-completeness rules now live in the
``api-surface`` pass of ``tools/analyze`` (which adds deprecated-name and
cross-layer-import checks on top). This shim keeps the old command line
working — ``python tools/lint_imports.py [paths...]`` — by delegating to::

    python tools/analyze.py [paths...] --rules api-surface

Exit status follows the framework's contract (0 clean, 1 findings).
Prefer calling ``tools/analyze.py`` directly; this file exists only so
scripts and muscle memory from before the framework keep working.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analyze.cli import main  # noqa: E402  (path bootstrap must run first)

if __name__ == "__main__":
    raise SystemExit(main([*sys.argv[1:], "--rules", "api-surface"]))
