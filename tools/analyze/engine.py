"""Analysis engine: discovery, parse cache, and multiprocessing fan-out.

The engine is deliberately dumb about *what* the passes check — it owns
the mechanics every pass shares:

* **discovery** — ``*.py`` files under the given roots, skipping
  ``__pycache__``, hidden directories, and egg-info;
* **module naming** — ``src/repro/serving/server.py`` becomes
  ``repro.serving.server`` so passes can reason about layers; files not
  under a ``src`` root get a best-effort dotted name from their path;
* **per-file analysis** — parse once, build the scope index once, run
  every enabled pass, then drop findings silenced by inline
  ``# analyze: ignore[...]`` comments (line-level or scope-level);
* **mtime-keyed cache** — a JSON sidecar mapping path -> (mtime_ns, size,
  config key) -> findings, so an unchanged tree re-checks in milliseconds;
* **fan-out** — ``--jobs N`` spreads cache misses across worker processes;
  results are deterministic regardless of worker count because findings
  are re-sorted by (path, line, col) after the merge.

Parse failures are not crashes: a file that does not parse yields a single
``parse/syntax-error`` finding and analysis continues.
"""

from __future__ import annotations

import ast
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from analyze.findings import (
    Finding,
    assign_fingerprints,
    filter_suppressed,
    parse_suppressions,
)
from analyze.passes import get_passes
from analyze.passes.base import PassContext, build_scope_index

__all__ = [
    "CACHE_VERSION",
    "FileReport",
    "RunResult",
    "discover_files",
    "module_name_for",
    "analyze_source",
    "analyze_file",
    "run_analysis",
]

#: Bump when pass behaviour changes so stale cache entries never mask
#: new findings.
CACHE_VERSION = 1

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclass
class FileReport:
    """Per-file outcome: surviving findings plus suppression accounting."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    from_cache: bool = False

    def as_cache_entry(self) -> dict:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": self.suppressed,
        }


@dataclass
class RunResult:
    """Whole-run outcome over every analyzed file."""

    findings: list[Finding]
    files_analyzed: int
    suppressed: int
    cache_hits: int


def discover_files(roots: list[Path]) -> list[Path]:
    """Every ``.py`` file under *roots* (files pass through), sorted."""
    files: set[Path] = set()
    for root in roots:
        if root.is_file():
            files.add(root)
            continue
        for path in root.rglob("*.py"):
            parts = set(path.parts)
            if parts & _SKIP_DIRS:
                continue
            if any(part.endswith(".egg-info") for part in path.parts):
                continue
            files.add(path)
    return sorted(files)


def module_name_for(path: Path) -> str:
    """Dotted module name for *path*, anchored at a ``src`` directory.

    ``src/repro/core/analysis.py`` -> ``repro.core.analysis``;
    ``tools/analyze/engine.py`` -> ``tools.analyze.engine``;
    ``__init__.py`` files name their package.
    """
    parts = list(path.parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        # Keep at most the last three path segments: enough to tell
        # scripts apart without depending on where the repo is checked out.
        parts = parts[-3:]
    if not parts:
        return ""
    parts = list(parts)
    parts[-1] = parts[-1].removesuffix(".py")
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def analyze_source(
    source: str,
    path: str,
    *,
    module: str | None = None,
    rules: list[str] | None = None,
) -> FileReport:
    """Analyze one in-memory source blob (the unit tests' entry point)."""
    report = FileReport(path=path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="parse",
                code="syntax-error",
                message=f"file does not parse: {exc.msg}",
            )
        )
        return report

    lines = source.splitlines()
    context = PassContext(
        path=path,
        module=module if module is not None else module_name_for(Path(path)),
        tree=tree,
        lines=lines,
        scopes=build_scope_index(tree),
    )
    findings: list[Finding] = []
    for analysis_pass in get_passes(rules):
        findings.extend(analysis_pass.run(context))

    suppressions = parse_suppressions(lines)
    scope_lines_of = {
        f.line: context.scope_header_lines(f.line) for f in findings
    }
    kept, dropped = filter_suppressed(findings, suppressions, scope_lines_of)
    kept.sort(key=lambda f: (f.line, f.col, f.rule, f.code))
    report.findings = kept
    report.suppressed = dropped
    return report


def analyze_file(path: Path, rules: list[str] | None = None) -> FileReport:
    """Analyze one file on disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        report = FileReport(path=str(path))
        report.findings.append(
            Finding(
                path=str(path),
                line=1,
                col=1,
                rule="parse",
                code="unreadable",
                message=f"cannot read file: {exc}",
            )
        )
        return report
    return analyze_source(source, str(path), rules=rules)


def _analyze_one(args: tuple[str, list[str] | None]) -> FileReport:
    path, rules = args
    return analyze_file(Path(path), rules)


# -- cache -------------------------------------------------------------------


def _config_key(rules: list[str] | None) -> str:
    from analyze.passes import known_rules

    enabled = sorted(rules) if rules is not None else sorted(known_rules())
    return f"v{CACHE_VERSION}:" + ",".join(enabled)


def _load_cache(cache_path: Path | None) -> dict:
    if cache_path is None or not cache_path.exists():
        return {}
    try:
        return json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}  # a corrupt cache is equivalent to a cold one


def _save_cache(cache_path: Path | None, cache: dict) -> None:
    if cache_path is None:
        return
    try:
        cache_path.write_text(json.dumps(cache), encoding="utf-8")
    except OSError:
        pass  # best-effort: a read-only checkout must not fail the run


def _fresh_entry(cache: dict, path: Path, config_key: str) -> dict | None:
    entry = cache.get(str(path))
    if not entry or entry.get("config") != config_key:
        return None
    try:
        stat = path.stat()
    except OSError:
        return None
    if entry.get("mtime_ns") != stat.st_mtime_ns or entry.get("size") != stat.st_size:
        return None
    return entry


def run_analysis(
    roots: list[Path],
    *,
    rules: list[str] | None = None,
    jobs: int = 1,
    cache_path: Path | None = None,
) -> RunResult:
    """Analyze every file under *roots*; returns merged, sorted findings."""
    files = discover_files(roots)
    config_key = _config_key(rules)
    cache = _load_cache(cache_path)

    reports: dict[str, FileReport] = {}
    misses: list[Path] = []
    for path in files:
        entry = _fresh_entry(cache, path, config_key)
        if entry is None:
            misses.append(path)
            continue
        report = FileReport(
            path=str(path),
            findings=[Finding(**f) for f in entry["findings"]],
            suppressed=entry["suppressed"],
            from_cache=True,
        )
        reports[str(path)] = report

    if jobs <= 0:
        jobs = os.cpu_count() or 1
    if jobs > 1 and len(misses) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            fresh = list(
                pool.map(
                    _analyze_one,
                    [(str(path), rules) for path in misses],
                    chunksize=max(1, len(misses) // (jobs * 4) or 1),
                )
            )
    else:
        fresh = [_analyze_one((str(path), rules)) for path in misses]

    for report in fresh:
        reports[report.path] = report

    new_cache: dict = {}
    for path in files:
        key = str(path)
        report = reports[key]
        try:
            stat = path.stat()
            new_cache[key] = {
                "config": config_key,
                "mtime_ns": stat.st_mtime_ns,
                "size": stat.st_size,
                **report.as_cache_entry(),
            }
        except OSError:
            pass  # file vanished mid-run; simply not cached
    _save_cache(cache_path, new_cache)

    findings = [f for path in files for f in reports[str(path)].findings]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.code))
    assign_fingerprints(findings)
    return RunResult(
        findings=findings,
        files_analyzed=len(files),
        suppressed=sum(r.suppressed for r in reports.values()),
        cache_hits=sum(1 for r in reports.values() if r.from_cache),
    )
