"""Analysis engine: discovery, parse cache, fan-out, and the project stage.

The engine is deliberately dumb about *what* the passes check — it owns
the mechanics every pass shares:

* **discovery** — ``*.py`` files under the given roots, skipping
  ``__pycache__``, hidden directories, and egg-info;
* **module naming** — ``src/repro/serving/server.py`` becomes
  ``repro.serving.server`` so passes can reason about layers; files not
  under a ``src`` root get a best-effort dotted name from their path;
* **per-file analysis (phase 1)** — parse once, build the scope index
  once, run every enabled per-file pass, extract the whole-program
  *summary* (``analyze.summaries``), then drop findings silenced by
  inline ``# analyze: ignore[...]`` comments;
* **project passes (phase 2)** — merge every file's summary into one
  :class:`analyze.project.ProjectModel` and run the cross-module rules
  (lock-order, resource-lifecycle, taint-wire) over it. Summaries are
  cached with the findings, so a warm run rebuilds the model from the
  cache without re-parsing anything;
* **cache** — a JSON sidecar keyed on ``(analyzer-code digest, mtime_ns,
  size, enabled rules)``. The digest is a hash of every ``tools/analyze``
  source file: editing a pass invalidates the whole cache, so stale
  results can never mask a new rule's findings;
* **fan-out** — ``--jobs N`` spreads cache misses across worker
  processes; results are deterministic regardless of worker count because
  findings are re-sorted by (path, line, col) after the merge.

Parse failures are not crashes: a file that does not parse yields a single
``parse/syntax-error`` finding (and no summary) and analysis continues.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from analyze.findings import (
    Finding,
    assign_fingerprints,
    filter_suppressed,
    parse_suppressions,
)
from analyze.passes import get_passes, get_project_passes
from analyze.passes.base import PassContext, build_scope_index
from analyze.project import run_project_passes
from analyze.summaries import extract_summary

__all__ = [
    "CACHE_VERSION",
    "FileReport",
    "RunResult",
    "analyzer_digest",
    "discover_files",
    "module_name_for",
    "analyze_source",
    "analyze_file",
    "run_analysis",
]

#: Bump when the cache entry *shape* changes; behaviour changes are
#: covered automatically by :func:`analyzer_digest`.
CACHE_VERSION = 2

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}

_digest_cache: str | None = None


def analyzer_digest() -> str:
    """Hash of every ``tools/analyze`` source file.

    Folded into the cache key so editing any pass (or the engine itself)
    invalidates every cached result — the cache-staleness gap where an
    edited rule kept serving its old findings.
    """
    global _digest_cache
    if _digest_cache is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).resolve().parent
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(path.relative_to(package_dir).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _digest_cache = digest.hexdigest()[:16]
    return _digest_cache


@dataclass
class FileReport:
    """Per-file outcome: surviving findings, suppression accounting, and
    the whole-program summary consumed by the project passes."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    from_cache: bool = False
    summary: dict | None = None

    def as_cache_entry(self) -> dict:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": self.suppressed,
            "summary": self.summary,
        }


@dataclass
class RunResult:
    """Whole-run outcome over every analyzed file."""

    findings: list[Finding]
    files_analyzed: int
    suppressed: int
    cache_hits: int
    artifacts: dict = field(default_factory=dict)


def discover_files(roots: list[Path]) -> list[Path]:
    """Every ``.py`` file under *roots* (files pass through), sorted."""
    files: set[Path] = set()
    for root in roots:
        if root.is_file():
            files.add(root)
            continue
        for path in root.rglob("*.py"):
            parts = set(path.parts)
            if parts & _SKIP_DIRS:
                continue
            if any(part.endswith(".egg-info") for part in path.parts):
                continue
            files.add(path)
    return sorted(files)


def module_name_for(path: Path) -> str:
    """Dotted module name for *path*, anchored at a ``src`` directory.

    ``src/repro/core/analysis.py`` -> ``repro.core.analysis``;
    ``tools/analyze/engine.py`` -> ``tools.analyze.engine``;
    ``__init__.py`` files name their package.
    """
    parts = list(path.parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        # Keep at most the last three path segments: enough to tell
        # scripts apart without depending on where the repo is checked out.
        parts = parts[-3:]
    if not parts:
        return ""
    parts = list(parts)
    parts[-1] = parts[-1].removesuffix(".py")
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def analyze_source(
    source: str,
    path: str,
    *,
    module: str | None = None,
    rules: list[str] | None = None,
) -> FileReport:
    """Analyze one in-memory source blob (the unit tests' entry point)."""
    report = FileReport(path=path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="parse",
                code="syntax-error",
                message=f"file does not parse: {exc.msg}",
            )
        )
        return report

    lines = source.splitlines()
    resolved_module = module if module is not None else module_name_for(Path(path))
    context = PassContext(
        path=path,
        module=resolved_module,
        tree=tree,
        lines=lines,
        scopes=build_scope_index(tree),
    )
    findings: list[Finding] = []
    for analysis_pass in get_passes(rules):
        findings.extend(analysis_pass.run(context))

    suppressions = parse_suppressions(lines)
    scope_lines_of = {
        f.line: context.scope_header_lines(f.line) for f in findings
    }
    kept, dropped = filter_suppressed(findings, suppressions, scope_lines_of)
    kept.sort(key=lambda f: (f.line, f.col, f.rule, f.code))
    report.findings = kept
    report.suppressed = dropped
    report.summary = extract_summary(
        tree, module=resolved_module, path=path, lines=lines
    )
    return report


def analyze_file(path: Path, rules: list[str] | None = None) -> FileReport:
    """Analyze one file on disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        report = FileReport(path=str(path))
        report.findings.append(
            Finding(
                path=str(path),
                line=1,
                col=1,
                rule="parse",
                code="unreadable",
                message=f"cannot read file: {exc}",
            )
        )
        return report
    return analyze_source(source, str(path), rules=rules)


def _analyze_one(args: tuple[str, list[str] | None]) -> FileReport:
    path, rules = args
    return analyze_file(Path(path), rules)


# -- cache -------------------------------------------------------------------


def _config_key(rules: list[str] | None) -> str:
    from analyze.passes import known_rules

    enabled = sorted(rules) if rules is not None else sorted(known_rules())
    return f"v{CACHE_VERSION}:{analyzer_digest()}:" + ",".join(enabled)


def _load_cache(cache_path: Path | None) -> dict:
    if cache_path is None or not cache_path.exists():
        return {}
    try:
        return json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}  # a corrupt cache is equivalent to a cold one


def _save_cache(cache_path: Path | None, cache: dict) -> None:
    if cache_path is None:
        return
    try:
        cache_path.write_text(json.dumps(cache), encoding="utf-8")
    except OSError:
        pass  # best-effort: a read-only checkout must not fail the run


def _fresh_entry(cache: dict, path: Path, config_key: str) -> dict | None:
    entry = cache.get(str(path))
    if not entry or entry.get("config") != config_key or "summary" not in entry:
        return None
    try:
        stat = path.stat()
    except OSError:
        return None
    if entry.get("mtime_ns") != stat.st_mtime_ns or entry.get("size") != stat.st_size:
        return None
    return entry


def run_analysis(
    roots: list[Path],
    *,
    rules: list[str] | None = None,
    jobs: int = 1,
    cache_path: Path | None = None,
    changed_only: set[str] | None = None,
    lock_contract: Path | None = None,
) -> RunResult:
    """Analyze every file under *roots*; returns merged, sorted findings.

    *changed_only* restricts **reported** findings to those paths — every
    file is still discovered and summarized (cache-served when warm) so
    the project passes always see the whole program.
    """
    files = discover_files(roots)
    file_rules, project_rules = _split_rules(rules)
    config_key = _config_key(rules)
    cache = _load_cache(cache_path)

    reports: dict[str, FileReport] = {}
    misses: list[Path] = []
    for path in files:
        entry = _fresh_entry(cache, path, config_key)
        if entry is None:
            misses.append(path)
            continue
        report = FileReport(
            path=str(path),
            findings=[Finding(**f) for f in entry["findings"]],
            suppressed=entry["suppressed"],
            from_cache=True,
            summary=entry["summary"],
        )
        reports[str(path)] = report

    if jobs <= 0:
        jobs = os.cpu_count() or 1
    if jobs > 1 and len(misses) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            fresh = list(
                pool.map(
                    _analyze_one,
                    [(str(path), file_rules) for path in misses],
                    chunksize=max(1, len(misses) // (jobs * 4) or 1),
                )
            )
    else:
        fresh = [_analyze_one((str(path), file_rules)) for path in misses]

    for report in fresh:
        reports[report.path] = report

    new_cache: dict = {}
    for path in files:
        key = str(path)
        report = reports[key]
        try:
            stat = path.stat()
            new_cache[key] = {
                "config": config_key,
                "mtime_ns": stat.st_mtime_ns,
                "size": stat.st_size,
                **report.as_cache_entry(),
            }
        except OSError:
            pass  # file vanished mid-run; simply not cached
    _save_cache(cache_path, new_cache)

    findings = [f for path in files for f in reports[str(path)].findings]

    artifacts: dict = {}
    project_suppressed = 0
    project_passes = get_project_passes(project_rules)
    if project_passes:
        summaries = {
            report.path: report.summary
            for report in reports.values()
            if report.summary is not None
        }
        options = {}
        if lock_contract is not None:
            options["lock_contract_path"] = str(lock_contract)
        project_findings, artifacts, project_suppressed = run_project_passes(
            summaries, project_passes, options=options
        )
        findings.extend(project_findings)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.code))
    assign_fingerprints(findings)
    if changed_only is not None:
        findings = [f for f in findings if f.path in changed_only]
    return RunResult(
        findings=findings,
        files_analyzed=len(files),
        suppressed=sum(r.suppressed for r in reports.values()) + project_suppressed,
        cache_hits=sum(1 for r in reports.values() if r.from_cache),
        artifacts=artifacts,
    )


def _split_rules(
    rules: list[str] | None,
) -> tuple[list[str] | None, list[str] | None]:
    """Split a mixed rule list into (per-file, project) subsets."""
    if rules is None:
        return None, None
    from analyze.passes import PROJECT_PASSES

    project_names = {cls.name for cls in PROJECT_PASSES}
    return (
        [rule for rule in rules if rule not in project_names],
        [rule for rule in rules if rule in project_names],
    )
