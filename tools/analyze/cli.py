"""Command-line interface for the static-analysis framework.

Exit codes (CI contract):

* ``0`` — no new findings (baselined and suppressed ones do not count),
  no stale baseline entries, and — with ``--locksan-check`` — no
  unreconciled runtime lock edges;
* ``1`` — at least one new finding, a stale baseline entry, a failed
  locksan reconciliation, or the ``--max-seconds`` budget was exceeded;
* ``2`` — usage error (unknown rule, unreadable baseline or dump).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

from analyze.engine import run_analysis
from analyze.findings import Baseline
from analyze.passes import ALL_PASSES, PROJECT_PASSES, known_rules
from analyze.passes.lock_order import load_contract, reconcile_locksan, render_dot
from analyze.reporters import render_human, render_json, render_sarif

__all__ = [
    "DEFAULT_PATHS",
    "DEFAULT_BASELINE",
    "DEFAULT_CACHE",
    "build_parser",
    "main",
]

DEFAULT_PATHS = ("src", "tools", "benchmarks")
DEFAULT_BASELINE = "tools/analyze_baseline.json"
DEFAULT_CACHE = ".analyze-cache.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="analyze",
        description="Two-phase stdlib AST static analysis for this repo.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list passes and exit"
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 0 = one per CPU (default: 1)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from current findings and exit 0",
    )
    parser.add_argument(
        "--cache",
        default=DEFAULT_CACHE,
        help=f"result cache path (default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="fail (exit 1) when the run exceeds this wall-clock budget",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "report findings only for files changed vs git HEAD (plus "
            "untracked files); every file is still summarized so the "
            "project passes stay whole-program-sound"
        ),
    )
    parser.add_argument(
        "--lock-graph",
        metavar="PREFIX",
        help=(
            "write the lock-order graph artifact to PREFIX.json and "
            "PREFIX.dot (requires the lock-order rule to be enabled)"
        ),
    )
    parser.add_argument(
        "--locksan-check",
        metavar="DUMP",
        help=(
            "reconcile a repro.testing.locksan runtime dump against the "
            "static lock-order model; exit 1 on runtime cycles or edges "
            "absent from the static graph and the contract file"
        ),
    )
    return parser


def _list_rules() -> str:
    lines = []
    for cls in ALL_PASSES:
        lines.append(f"{cls.name}: {cls.description}")
        for code in cls.codes:
            lines.append(f"  - {code}")
    lines.append("project passes (whole-program, phase 2):")
    for cls in PROJECT_PASSES:
        lines.append(f"{cls.name}: {cls.description}")
        for code in cls.codes:
            lines.append(f"  - {code}")
    return "\n".join(lines)


def _git_changed_paths() -> set[str] | None:
    """Repo-relative paths changed vs HEAD, plus untracked files."""
    changed: set[str] = set()
    for command in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, timeout=30, check=True
            )
        except (OSError, subprocess.SubprocessError):
            return None
        changed.update(line.strip() for line in proc.stdout.splitlines() if line.strip())
    return changed


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rules = None
    if args.rules:
        rules = [token.strip() for token in args.rules.split(",") if token.strip()]
        unknown = set(rules) - set(known_rules())
        if unknown:
            print(
                f"error: unknown rule(s) {sorted(unknown)}; "
                f"known: {known_rules()}",
                file=sys.stderr,
            )
            return 2

    roots = [Path(p) for p in args.paths]
    missing = [str(p) for p in roots if not p.exists()]
    if missing:
        print(f"error: path(s) do not exist: {missing}", file=sys.stderr)
        return 2

    changed_only: set[str] | None = None
    if args.changed_only:
        changed_only = _git_changed_paths()
        if changed_only is None:
            print(
                "warning: git unavailable; --changed-only reporting everything",
                file=sys.stderr,
            )

    start = time.perf_counter()
    result = run_analysis(
        roots,
        rules=rules,
        jobs=args.jobs,
        cache_path=None if args.no_cache else Path(args.cache),
        changed_only=changed_only,
    )
    elapsed = time.perf_counter() - start

    baseline = Baseline(path=Path(args.baseline))
    if not args.no_baseline:
        try:
            baseline = Baseline.load(Path(args.baseline))
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2

    if args.update_baseline:
        baseline.update_from(result.findings)
        baseline.save()
        print(
            f"baseline updated: {len(baseline.entries)} entr"
            f"{'y' if len(baseline.entries) == 1 else 'ies'} -> {baseline.path}"
        )
        return 0

    fresh, baselined, stale = baseline.apply(result.findings)

    lock_graph = result.artifacts.get("lock_order")
    if args.lock_graph:
        if lock_graph is None:
            print(
                "error: --lock-graph needs the lock-order rule enabled",
                file=sys.stderr,
            )
            return 2
        prefix = Path(args.lock_graph)
        prefix.parent.mkdir(parents=True, exist_ok=True)
        prefix.with_suffix(".json").write_text(
            json.dumps(lock_graph, indent=2) + "\n", encoding="utf-8"
        )
        prefix.with_suffix(".dot").write_text(
            render_dot(lock_graph), encoding="utf-8"
        )

    render = {
        "json": render_json,
        "sarif": render_sarif,
        "human": render_human,
    }[args.format]
    print(
        render(
            fresh,
            files_analyzed=result.files_analyzed,
            suppressed=result.suppressed,
            baselined=baselined,
            cache_hits=result.cache_hits,
            elapsed_s=elapsed,
            stale_baseline=stale,
        )
    )

    locksan_failed = False
    if args.locksan_check:
        if lock_graph is None:
            print(
                "error: --locksan-check needs the lock-order rule enabled",
                file=sys.stderr,
            )
            return 2
        try:
            dump = json.loads(Path(args.locksan_check).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read locksan dump: {exc}", file=sys.stderr)
            return 2
        errors, notes = reconcile_locksan(dump, lock_graph, load_contract())
        for note in notes:
            print(f"locksan: {note}", file=sys.stderr)
        for error in errors:
            print(f"locksan: ERROR: {error}", file=sys.stderr)
        if errors:
            locksan_failed = True
        else:
            matched = sum(1 for e in dump.get("edges", []))
            print(
                f"locksan: {matched} observed edge(s) reconciled against the "
                "static model; no runtime cycles"
            )

    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(
            f"error: analysis took {elapsed:.2f}s, over the "
            f"--max-seconds {args.max_seconds:.2f} budget",
            file=sys.stderr,
        )
        return 1
    return 1 if fresh or stale or locksan_failed else 0
