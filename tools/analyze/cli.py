"""Command-line interface for the static-analysis framework.

Exit codes (CI contract):

* ``0`` — no new findings (baselined and suppressed ones do not count),
  and no stale baseline entries;
* ``1`` — at least one new finding, or a stale baseline entry, or the
  ``--max-seconds`` budget was exceeded;
* ``2`` — usage error (unknown rule, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from analyze.engine import run_analysis
from analyze.findings import Baseline
from analyze.passes import ALL_PASSES, known_rules
from analyze.reporters import render_human, render_json

__all__ = [
    "DEFAULT_PATHS",
    "DEFAULT_BASELINE",
    "DEFAULT_CACHE",
    "build_parser",
    "main",
]

DEFAULT_PATHS = ("src", "tools", "benchmarks")
DEFAULT_BASELINE = "tools/analyze_baseline.json"
DEFAULT_CACHE = ".analyze-cache.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="analyze",
        description="Multi-pass stdlib AST static analysis for this repo.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list passes and exit"
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; 0 = one per CPU (default: 1)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from current findings and exit 0",
    )
    parser.add_argument(
        "--cache",
        default=DEFAULT_CACHE,
        help=f"mtime-keyed result cache path (default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="fail (exit 1) when the run exceeds this wall-clock budget",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for cls in ALL_PASSES:
        lines.append(f"{cls.name}: {cls.description}")
        for code in cls.codes:
            lines.append(f"  - {code}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rules = None
    if args.rules:
        rules = [token.strip() for token in args.rules.split(",") if token.strip()]
        unknown = set(rules) - set(known_rules())
        if unknown:
            print(
                f"error: unknown rule(s) {sorted(unknown)}; "
                f"known: {known_rules()}",
                file=sys.stderr,
            )
            return 2

    roots = [Path(p) for p in args.paths]
    missing = [str(p) for p in roots if not p.exists()]
    if missing:
        print(f"error: path(s) do not exist: {missing}", file=sys.stderr)
        return 2

    start = time.perf_counter()
    result = run_analysis(
        roots,
        rules=rules,
        jobs=args.jobs,
        cache_path=None if args.no_cache else Path(args.cache),
    )
    elapsed = time.perf_counter() - start

    baseline = Baseline(path=Path(args.baseline))
    if not args.no_baseline:
        try:
            baseline = Baseline.load(Path(args.baseline))
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2

    if args.update_baseline:
        baseline.update_from(result.findings)
        baseline.save()
        print(
            f"baseline updated: {len(baseline.entries)} entr"
            f"{'y' if len(baseline.entries) == 1 else 'ies'} -> {baseline.path}"
        )
        return 0

    fresh, baselined, stale = baseline.apply(result.findings)

    render = render_json if args.format == "json" else render_human
    print(
        render(
            fresh,
            files_analyzed=result.files_analyzed,
            suppressed=result.suppressed,
            baselined=baselined,
            cache_hits=result.cache_hits,
            elapsed_s=elapsed,
            stale_baseline=stale,
        )
    )

    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(
            f"error: analysis took {elapsed:.2f}s, over the "
            f"--max-seconds {args.max_seconds:.2f} budget",
            file=sys.stderr,
        )
        return 1
    return 1 if fresh or stale else 0
