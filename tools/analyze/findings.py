"""Finding model, inline suppressions, and the checked-in baseline.

A :class:`Finding` is one rule violation at one source location. Its
*fingerprint* deliberately excludes the line number — it is built from the
file, the rule code, the enclosing symbol, and an ordinal among identical
siblings — so baseline entries survive unrelated edits that shift lines.

Suppressions are inline comments::

    self.log_path.open("a")  # analyze: ignore[io-under-lock] why it is fine

A suppression comment matches a finding when it sits on the finding's
line, on the directly preceding comment-only line, or on the ``def`` /
``class`` line of any enclosing scope (scope-level suppressions are how a
method whose whole contract is "holds the lock while doing I/O" opts out
once, with one justification, instead of per-statement). The bracket list
accepts specific codes (``io-under-lock``), whole rules
(``lock-discipline``), or ``all``.

The baseline is a JSON file of fingerprints with mandatory justifications;
``--update-baseline`` rewrites it from the current findings. A baseline
entry that no longer matches any finding is reported as stale so the file
can only shrink over time.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "Baseline",
    "SUPPRESS_RE",
    "parse_suppressions",
    "filter_suppressed",
    "assign_fingerprints",
]

#: ``# analyze: ignore[code, other-code] optional justification``
SUPPRESS_RE = re.compile(r"#\s*analyze:\s*ignore\[([A-Za-z0-9_*,\s-]+)\]")


@dataclass
class Finding:
    """One rule violation at one location."""

    path: str  #: repo-relative POSIX path
    line: int
    col: int
    rule: str  #: pass name, e.g. ``lock-discipline``
    code: str  #: specific check, e.g. ``io-under-lock``
    message: str
    symbol: str = ""  #: innermost enclosing ``Class.method`` qualname
    fingerprint: str = ""  #: line-independent identity (set post-collection)

    def as_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule}/{self.code}: {self.message}{where}"
        )


def assign_fingerprints(findings: list[Finding]) -> None:
    """Set each finding's fingerprint: path+code+symbol plus an ordinal.

    The ordinal disambiguates several identical violations inside one
    symbol (three unguarded writes to different attributes get distinct
    fingerprints via the message; three to the *same* attribute via the
    ordinal), while staying independent of line numbers.
    """
    seen: dict[tuple, int] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col)):
        key = (finding.path, finding.rule, finding.code, finding.symbol, finding.message)
        ordinal = seen.get(key, 0)
        seen[key] = ordinal + 1
        finding.fingerprint = "::".join(
            [finding.path, finding.rule, finding.code, finding.symbol,
             finding.message, str(ordinal)]
        )


def parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line number -> set of suppressed tokens on that line."""
    out: dict[int, set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = SUPPRESS_RE.search(text)
        if match:
            out[number] = {
                token.strip() for token in match.group(1).split(",") if token.strip()
            }
    return out


def _matches(tokens: set[str], finding: Finding) -> bool:
    return bool(tokens & {finding.code, finding.rule, "all", "*"})


def filter_suppressed(
    findings: list[Finding],
    suppressions: dict[int, set[str]],
    scope_lines_of: dict[int, list[int]] | None = None,
) -> tuple[list[Finding], int]:
    """Drop suppressed findings; return (kept, suppressed_count).

    *scope_lines_of* maps a finding's line to the ``def``/``class`` header
    lines of its enclosing scopes (innermost first), produced by the
    engine's scope index.
    """
    if not suppressions:
        return findings, 0
    kept: list[Finding] = []
    dropped = 0
    for finding in findings:
        candidate_lines = [finding.line, finding.line - 1]
        if scope_lines_of:
            candidate_lines.extend(scope_lines_of.get(finding.line, []))
        if any(
            _matches(suppressions[line], finding)
            for line in candidate_lines
            if line in suppressions
        ):
            dropped += 1
        else:
            kept.append(finding)
    return kept, dropped


@dataclass
class Baseline:
    """Checked-in accepted findings: fingerprint -> justification."""

    path: Path
    entries: dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls(path=path)
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = {
            item["fingerprint"]: item.get("justification", "")
            for item in data.get("entries", [])
        }
        return cls(path=path, entries=entries)

    def save(self) -> None:
        payload = {
            "version": 1,
            "entries": [
                {"fingerprint": fingerprint, "justification": justification}
                for fingerprint, justification in sorted(self.entries.items())
            ],
        }
        self.path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def apply(self, findings: list[Finding]) -> tuple[list[Finding], int, list[str]]:
        """Split findings into (new, baselined_count, stale_fingerprints)."""
        matched: set[str] = set()
        fresh: list[Finding] = []
        for finding in findings:
            if finding.fingerprint in self.entries:
                matched.add(finding.fingerprint)
            else:
                fresh.append(finding)
        stale = sorted(set(self.entries) - matched)
        return fresh, len(matched), stale

    def update_from(self, findings: list[Finding]) -> None:
        """Rewrite entries from *findings*, keeping existing justifications."""
        self.entries = {
            finding.fingerprint: self.entries.get(
                finding.fingerprint, "TODO: justify or fix"
            )
            for finding in findings
        }
