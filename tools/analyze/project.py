"""Phase 2: the whole-program model built from per-file summaries.

``ProjectModel`` merges every file's summary (see ``analyze.summaries``)
into a cross-module symbol table and exposes the three resolution
primitives the project passes share:

* ``resolve_name(module, dotted)`` — follow imports to a class, function,
  or external dotted name;
* ``resolve_type(term, module, classid)`` — evaluate a type *term*
  (``self``, attribute-of, constructor-return, container element…) to a
  class id like ``repro.serving.workers.WorkerPool`` or an external type
  like ``ext:threading.Thread``;
* ``resolve_call(call, module, classid)`` — map a recorded call site to
  the callee's function id, constructor, or external target.

Resolution is deliberately *precise over complete*: an attribute call on
a receiver whose type cannot be proven is skipped, never guessed. The
project rules trade recall for a zero-false-positive posture — same
policy as the per-file passes.

Project passes subclass :class:`ProjectPass`; they return findings plus
optional JSON artifacts (the lock-order graph). Suppressions still work:
findings are filtered against each file's summary-carried suppression
table and scope index before they reach the reporter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from analyze.findings import Finding, filter_suppressed

__all__ = [
    "Resolved",
    "ProjectModel",
    "ProjectPass",
    "run_project_passes",
]

_MAX_DEPTH = 8


@dataclass(frozen=True)
class Resolved:
    """A resolved type: project class (``kind='cls'``) or external
    (``kind='ext'``), with the resolved container payload when known."""

    kind: str  # "cls" | "ext"
    id: str  # class id ("module.Class") or external dotted name
    elem: "Resolved | None" = None


@dataclass
class ProjectModel:
    """Cross-module symbol table over every file summary."""

    summaries: dict[str, dict]  # path -> summary
    options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.modules: dict[str, dict] = {}
        self.module_paths: dict[str, str] = {}
        for path, summary in sorted(self.summaries.items()):
            module = summary["module"]
            self.modules[module] = summary
            self.module_paths[module] = path
        self.classes: dict[str, dict] = {}
        self.functions: dict[str, dict] = {}
        self.function_module: dict[str, str] = {}
        for module, summary in self.modules.items():
            for name, cls in summary["classes"].items():
                self.classes[f"{module}.{name}"] = cls
            for qual, fn in summary["functions"].items():
                funcid = f"{module}.{qual}"
                self.functions[funcid] = fn
                self.function_module[funcid] = module
        self._type_cache: dict[tuple, Resolved | None] = {}

    # -- name resolution -----------------------------------------------------

    def _resolve_local(self, module: str, name: str) -> tuple[str, str] | None:
        summary = self.modules.get(module)
        if summary is None:
            return None
        if name in summary["classes"]:
            return ("cls", f"{module}.{name}")
        if name in summary["functions"]:
            return ("fn", f"{module}.{name}")
        target = summary["imports"].get(name)
        if target is not None:
            return self._resolve_dotted(target)
        return None

    def _resolve_dotted(self, dotted: str) -> tuple[str, str]:
        """Interpret an absolute dotted path against summarized modules."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                rest = parts[cut:]
                if not rest:
                    return ("mod", prefix)
                if len(rest) == 1:
                    local = self._resolve_local(prefix, rest[0])
                    if local is not None:
                        return local
                return ("ext", dotted)
        return ("ext", dotted)

    def resolve_name(self, module: str, name: str) -> tuple[str, str] | None:
        """Resolve *name* (possibly dotted) as seen from *module*."""
        head, _, rest = name.partition(".")
        local = self._resolve_local(module, head)
        if local is None:
            return None
        if not rest:
            return local
        kind, target = local
        if kind == "mod":
            return self.resolve_name(target, rest)
        if kind == "ext":
            return ("ext", f"{target}.{rest}")
        if kind == "cls" and "." not in rest:
            # Class attribute access (Cls.CONST / Cls.method) — opaque.
            return None
        return None

    # -- type resolution -----------------------------------------------------

    def resolve_type(
        self, term: dict | None, module: str, classid: str | None, _depth: int = 0
    ) -> Resolved | None:
        if term is None or _depth > _MAX_DEPTH:
            return None
        key = (id(term), module, classid)
        if _depth == 0 and key in self._type_cache:
            return self._type_cache[key]
        result = self._resolve_type(term, module, classid, _depth)
        if _depth == 0:
            self._type_cache[key] = result
        return result

    def _resolve_type(
        self, term: dict, module: str, classid: str | None, depth: int
    ) -> Resolved | None:
        kind = term.get("t")
        if kind == "self":
            return Resolved("cls", classid) if classid else None
        if kind == "cls":
            resolved = self.resolve_name(module, term["name"])
            elem_term = term.get("elem")
            if resolved is None and term["name"] in (
                "dict",
                "list",
                "set",
                "tuple",
                "frozenset",
            ):
                # Builtin containers: opaque themselves, but the payload
                # type (``dict[str, _WorkerHandle]``) flows through.
                resolved = ("ext", f"builtins.{term['name']}")
            if resolved is None:
                return None
            rkind, target = resolved
            elem = (
                self.resolve_type(elem_term, module, classid, depth + 1)
                if elem_term
                else None
            )
            if rkind == "cls":
                return Resolved("cls", target, elem)
            if rkind == "ext":
                return Resolved("ext", target, elem)
            return None
        if kind == "attr":
            base = self.resolve_type(term["of"], module, classid, depth + 1)
            if base is None or base.kind != "cls":
                return None
            return self._attr_type(base.id, term["name"], depth)
        if kind == "ret":
            recv = self.resolve_type(term["recv"], module, classid, depth + 1)
            if recv is None:
                return None
            if term["name"] in ("values", "copy"):
                # dict.values()/copy() keep the payload type flowing.
                return recv
            if recv.kind != "cls":
                return None
            return self._method_return(recv.id, term["name"], depth)
        if kind == "retf":
            resolved = self.resolve_name(module, term["name"])
            if resolved is None:
                return None
            rkind, target = resolved
            if rkind == "cls":
                return Resolved("cls", target)
            if rkind == "ext":
                return Resolved("ext", target)
            if rkind == "fn":
                fn = self.functions[target]
                fn_module = self.function_module[target]
                return self.resolve_type(fn["returns"], fn_module, None, depth + 1)
            return None
        if kind == "elem":
            base = self.resolve_type(term["of"], module, classid, depth + 1)
            return base.elem if base else None
        return None

    def _attr_type(self, classid: str, attr: str, depth: int) -> Resolved | None:
        for cid in self._mro(classid):
            cls = self.classes.get(cid)
            if cls is None:
                continue
            term = cls["attr_terms"].get(attr)
            if term is not None:
                module = cid.rsplit(".", 1)[0]
                return self.resolve_type(term, module, cid, depth + 1)
        return None

    def _method_return(self, classid: str, method: str, depth: int) -> Resolved | None:
        funcid = self.find_method(classid, method)
        if funcid is None:
            return None
        fn = self.functions[funcid]
        owner = funcid.rsplit(".", 2)[0] + "." + funcid.rsplit(".", 2)[1]
        module = self.function_module[funcid]
        returns = fn["returns"]
        if returns and returns.get("t") == "cls":
            # ``-> "WorkerPool"`` style self-returns resolve in the owner.
            pass
        return self.resolve_type(returns, module, owner, depth + 1)

    def _mro(self, classid: str) -> list[str]:
        """Linearized ancestry (shallow, cycle-safe) for attr/method lookup."""
        order, queue, seen = [], [classid], set()
        while queue:
            cid = queue.pop(0)
            if cid in seen:
                continue
            seen.add(cid)
            order.append(cid)
            cls = self.classes.get(cid)
            if cls is None:
                continue
            module = cid.rsplit(".", 1)[0]
            for base in cls["bases"]:
                resolved = self.resolve_name(module, base)
                if resolved and resolved[0] == "cls":
                    queue.append(resolved[1])
        return order

    def find_method(self, classid: str, method: str) -> str | None:
        for cid in self._mro(classid):
            cls = self.classes.get(cid)
            if cls and method in cls["methods"]:
                return f"{cid}.{method}"
        return None

    # -- call resolution -----------------------------------------------------

    def resolve_call(
        self, call: dict, module: str, classid: str | None
    ) -> tuple[str, str] | None:
        """Resolve a call record to ``("fn", funcid)``, ``("ctor", classid)``,
        or ``("ext", dotted)``; None when the receiver cannot be proven."""
        chain = call.get("chain")
        if chain:
            resolved = self.resolve_name(module, chain)
            if resolved is None:
                return None
            kind, target = resolved
            if kind == "fn":
                return ("fn", target)
            if kind == "cls":
                return ("ctor", target)
            if kind == "ext":
                return ("ext", target)
            return None
        recv = self.resolve_type(call.get("recv"), module, classid)
        if recv is None:
            return None
        if recv.kind == "ext":
            return ("ext", f"{recv.id}.{call['name']}")
        funcid = self.find_method(recv.id, call["name"])
        return ("fn", funcid) if funcid else None

    # -- convenience ---------------------------------------------------------

    def owner_of(self, funcid: str) -> str | None:
        """Class id of a method funcid (``module.Cls.meth`` -> ``module.Cls``)."""
        module = self.function_module[funcid]
        qual = funcid[len(module) + 1 :]
        if "." not in qual:
            return None
        fn = self.functions[funcid]
        if fn.get("cls") is None:
            return None
        head = qual.split(".")[0]
        return f"{module}.{head}" if head == fn["cls"] else None

    def function_context(self, funcid: str) -> tuple[str, str | None]:
        return self.function_module[funcid], self.owner_of(funcid)

    def path_of(self, funcid_or_module: str) -> str:
        module = (
            funcid_or_module
            if funcid_or_module in self.module_paths
            else self.function_module.get(funcid_or_module, "")
        )
        return self.module_paths.get(module, "<unknown>")


class ProjectPass:
    """A whole-program pass over the merged :class:`ProjectModel`."""

    name: str = ""
    codes: tuple[str, ...] = ()
    description: str = ""

    def run(self, model: ProjectModel) -> tuple[list[Finding], dict]:
        raise NotImplementedError


def run_project_passes(
    summaries: dict[str, dict],
    passes: list[ProjectPass],
    *,
    options: dict | None = None,
) -> tuple[list[Finding], dict, int]:
    """Build the model, run *passes*, apply per-file suppressions.

    Returns ``(findings, artifacts, suppressed_count)``.
    """
    model = ProjectModel(summaries, options=dict(options or {}))
    findings: list[Finding] = []
    artifacts: dict = {}
    for project_pass in passes:
        pass_findings, pass_artifacts = project_pass.run(model)
        findings.extend(pass_findings)
        artifacts.update(pass_artifacts)

    kept: list[Finding] = []
    suppressed = 0
    by_path: dict[str, list[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    for path, group in by_path.items():
        summary = summaries.get(path)
        if summary is None:
            kept.extend(group)
            continue
        suppressions = {
            int(line): set(tokens) for line, tokens in summary["suppress"].items()
        }
        scopes = summary["scopes"]
        scope_lines_of = {
            finding.line: [
                s[1] for s in scopes if s[2] <= finding.line <= s[3]
            ]
            for finding in group
        }
        fresh, dropped = filter_suppressed(group, suppressions, scope_lines_of)
        kept.extend(fresh)
        suppressed += dropped
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.code))
    return kept, artifacts, suppressed
