"""Project pass: interprocedural wire-byte taint flow.

The serving stack's untrusted-input contract (docs/serving.md): bytes
read off the wire — the HTTP body stream (``self.rfile.read``) or a
worker pipe (``conn.recv_bytes``) — must pass a *decode/validate*
boundary (``decode_png`` / ``decode_netpbm`` / ``decode_image_payload`` /
``ensure_image``) before any ndarray construction or math touches them.
The per-file ``validation-boundary`` pass checks one function at a time;
this pass follows the bytes across module boundaries via the call graph.

Taint propagates through assignments, slices, concatenation, container
literals, ``list.append``, and *resolved* calls (a callee that returns
its tainted parameter taints the call result, computed recursively with
memoization). Sanitizer calls clear taint; unresolvable calls clear
taint too — precision over recall, same as the other project passes.

Codes:

* **``raw-ndarray-sink``** — tainted bytes reach ``np.frombuffer`` /
  ``np.fromstring`` (directly, or inside a resolved callee — reported at
  the call site that sent the tainted bytes in).
* **``raw-ndarray-param``** — tainted bytes passed as an
  ndarray-annotated parameter: wire bytes smuggled into image math.
"""

from __future__ import annotations

from analyze.findings import Finding
from analyze.project import ProjectModel, ProjectPass

__all__ = ["TaintWirePass", "SANITIZERS"]

SANITIZERS = {
    "decode_png",
    "decode_netpbm",
    "decode_image_payload",
    "ensure_image",
}

_SINK_LEAVES = {"frombuffer", "fromstring"}
_NUMPY_ROOTS = {"np", "numpy"}
_COLLECT_METHODS = {"append", "extend", "add"}


def _is_np_sink(chain: str | None) -> bool:
    if not chain or "." not in chain:
        return False
    root, _, leaf = chain.partition(".")
    return root in _NUMPY_ROOTS and leaf.rpartition(".")[2] in _SINK_LEAVES


def _is_ndarray_term(term: dict | None) -> bool:
    return bool(
        term
        and term.get("t") == "cls"
        and term["name"].rpartition(".")[2] == "ndarray"
    )


class TaintWirePass(ProjectPass):
    name = "taint-wire"
    codes = ("raw-ndarray-sink", "raw-ndarray-param")
    description = (
        "Interprocedural taint: wire bytes (rfile.read / pipe recv) must "
        "pass decode_png/decode_netpbm/ensure_image before ndarray "
        "construction or math, across module boundaries."
    )

    def run(self, model: ProjectModel) -> tuple[list[Finding], dict]:
        self._model = model
        self._memo: dict[tuple[str, frozenset], tuple[bool, bool]] = {}
        self._in_progress: set[tuple[str, frozenset]] = set()
        findings: list[Finding] = []
        for funcid in sorted(model.functions):
            findings.extend(self._simulate(funcid, frozenset(), emit=True)[2])
        return findings, {}

    # -- the interprocedural simulator --------------------------------------

    def _summary_flags(self, funcid: str, tainted: frozenset) -> tuple[bool, bool]:
        """(returns_taint, sinks_if_tainted) for *funcid* with *tainted*
        params — memoized, cycle-guarded, no findings emitted."""
        key = (funcid, tainted)
        if key in self._memo:
            return self._memo[key]
        if key in self._in_progress:
            return (False, False)
        self._in_progress.add(key)
        returns_taint, sinks, _ = self._simulate(funcid, tainted, emit=False)
        self._in_progress.discard(key)
        self._memo[key] = (returns_taint, sinks)
        return self._memo[key]

    def _simulate(
        self, funcid: str, tainted_params: frozenset, *, emit: bool
    ) -> tuple[bool, bool, list[Finding]]:
        model = self._model
        fn = model.functions[funcid]
        module, classid = model.function_context(funcid)
        leaf = funcid.rsplit(".", 1)[1]
        if leaf in SANITIZERS:
            # The decode/validate boundary itself is allowed to touch raw
            # bytes — that is its entire job.
            return (False, False, [])
        path = model.path_of(funcid)
        qual = funcid[len(module) + 1 :]

        tainted: set[str] = set(tainted_params)
        returns_taint = False
        sinks_hit = False
        findings: list[Finding] = []

        def emit_finding(line: int, code: str, message: str) -> None:
            if emit:
                findings.append(
                    Finding(
                        path=path, line=line, col=1, rule=self.name,
                        code=code, message=message, symbol=qual,
                    )
                )

        for op in fn["taint"]:
            kind = op["op"]
            if kind == "assign":
                if any(v in tainted for v in op["src"]):
                    tainted.add(op["dst"])
                else:
                    tainted.discard(op["dst"])
                continue
            if kind == "return":
                if any(v in tainted for v in op["vars"]):
                    returns_taint = True
                continue
            # kind == "call"
            name = op["name"]
            dst = op["dst"]
            tainted_args = [v for v in op["args"] if v and v in tainted]

            if name in _COLLECT_METHODS and tainted_args and op["recv_var"]:
                tainted.add(op["recv_var"])
                continue
            if op["source"]:
                if dst:
                    tainted.add(dst)
                continue
            if name in SANITIZERS:
                if dst:
                    tainted.discard(dst)
                continue
            if _is_np_sink(op["chain"]) and tainted_args:
                sinks_hit = True
                emit_finding(
                    op["line"],
                    "raw-ndarray-sink",
                    f"raw wire bytes ({', '.join(sorted(set(tainted_args)))}) "
                    f"reach np.{op['chain'].rpartition('.')[2]} without "
                    "passing decode_png/decode_netpbm/ensure_image",
                )
                if dst:
                    tainted.add(dst)
                continue

            call = {"name": name, "chain": op["chain"], "recv": op["recv"]}
            target = model.resolve_call(call, module, classid)
            result_tainted = False
            if target is not None and target[0] == "fn":
                callee = target[1]
                callee_leaf = callee.rsplit(".", 1)[1]
                if callee_leaf in SANITIZERS:
                    pass  # boundary crossed: result is clean
                else:
                    callee_fn = model.functions[callee]
                    params = list(callee_fn["params"])
                    if params and params[0] == "self" and op["chain"] is None:
                        params = params[1:]
                    tainted_callee_params = frozenset(
                        pname
                        for pname, v in zip(params, op["args"])
                        if v and v in tainted
                    )
                    for pname, v in zip(params, op["args"]):
                        if (
                            v
                            and v in tainted
                            and _is_ndarray_term(
                                callee_fn["param_terms"].get(pname)
                            )
                        ):
                            sinks_hit = True
                            emit_finding(
                                op["line"],
                                "raw-ndarray-param",
                                f"raw wire bytes ({v}) passed as "
                                f"ndarray parameter '{pname}' of "
                                f"{callee_leaf}() without decode/validate",
                            )
                    rt, callee_sinks = self._summary_flags(
                        callee, tainted_callee_params
                    )
                    if tainted_callee_params and callee_sinks:
                        sinks_hit = True
                        emit_finding(
                            op["line"],
                            "raw-ndarray-sink",
                            "raw wire bytes "
                            f"({', '.join(sorted(tainted_callee_params))}) "
                            f"flow into {callee_leaf}(), which applies ndarray "
                            "construction/math without decode/validate",
                        )
                    # ``rt`` also covers a callee with its own wire source
                    # and clean arguments (e.g. body = self._read_body()).
                    result_tainted = rt
            if dst:
                if result_tainted:
                    tainted.add(dst)
                else:
                    tainted.discard(dst)

        return (returns_taint, sinks_hit, findings)
