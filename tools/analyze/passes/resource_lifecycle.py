"""Project pass: resource lifecycle — acquisition to release on all paths.

Tracks OS-handle-bearing objects from the call that creates them to the
call that releases them:

* builtin acquirers — ``socket.socket`` / ``socket.create_connection``,
  ``subprocess.Popen``, ``http.client.HTTPConnection``,
  ``threading.Thread``, ``multiprocessing`` pipe ``Connection``s,
  ``selectors`` selectors (the epoll/kqueue fd behind the serving event
  loop), and ``multiprocessing.shared_memory.SharedMemory`` segments
  (the mapped fd behind the worker slot rings);
* *resource-backed* project classes — any class holding one of the above
  in an attribute (by assignment or annotation, computed to a fixpoint so
  a class holding a resource-backed class counts too) that also exposes a
  release method (``close``/``shutdown``/``stop``/``terminate``/``__exit__``);
* factories — functions whose return annotation resolves to either.

Escape analysis keeps ownership honest: a handle that is returned, passed
to a constructor (ownership transfer), or stored on ``self`` is not a
local leak — but a ``self``-stored handle must be released by *some*
method of its class (``owned-unreleased`` otherwise). Handles appended to
a local list count as released when a loop over that list releases each
element.

Codes:

* **``leaked-resource``** — acquired, never released or escaped.
* **``leak-on-exception``** — released, but only on the straight-line
  path; an exception between acquire and release leaks the fd. Release
  must happen in a ``finally``/``except`` block or via ``with``.
  (Threads are exempt: an unjoined thread on an error path is not an fd.)
* **``popen-pipe-leak``** — a ``Popen(stdout=PIPE)`` terminated locally
  without closing the pipe fd; ``kill()``+``wait()`` reaps the child but
  the parent's pipe end survives until GC.
* **``unjoined-thread``** — a non-daemon thread that is neither joined,
  stored, nor escaped.
* **``owned-unreleased``** — a resource stored on ``self`` in a class with
  no method that ever releases that attribute.
"""

from __future__ import annotations

from analyze.findings import Finding
from analyze.project import ProjectModel, ProjectPass, Resolved

__all__ = ["ResourceLifecyclePass"]

#: External types that directly hold an OS handle, and their kind.
_EXT_KINDS = {
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "subprocess.Popen": "popen",
    "http.client.HTTPConnection": "http",
    "http.client.HTTPSConnection": "http",
    "multiprocessing.Pipe": "pipe",
    "multiprocessing.connection.Connection": "pipe",
    "threading.Thread": "thread",
    "selectors.BaseSelector": "selector",
    "selectors.DefaultSelector": "selector",
    "selectors.SelectSelector": "selector",
    "multiprocessing.shared_memory.SharedMemory": "shm",
}

#: Kinds that hold a file descriptor (exception-safety required).
#: ``selector`` holds the epoll/kqueue fd; ``shm`` holds the mapped
#: segment fd until close() (and the segment itself until unlink()).
_FD_KINDS = {"socket", "popen", "http", "pipe", "object", "selector", "shm"}

#: A class is resource-backed only if it can actually release.
_RELEASER_METHODS = {"close", "shutdown", "stop", "terminate", "__exit__", "join"}


def _resource_backed_classes(model: ProjectModel) -> set[str]:
    """Class ids holding fd-bearing attrs (transitively), with a releaser."""
    backed: set[str] = set()
    changed = True
    while changed:
        changed = False
        for classid, cls in model.classes.items():
            if classid in backed:
                continue
            if not (_RELEASER_METHODS & set(cls["methods"])):
                continue
            module = classid.rsplit(".", 1)[0]
            for term in cls["attr_terms"].values():
                resolved = model.resolve_type(term, module, classid)
                if _is_fd_resource(resolved, backed):
                    backed.add(classid)
                    changed = True
                    break
    return backed


def _is_fd_resource(resolved: Resolved | None, backed: set[str]) -> bool:
    if resolved is None:
        return False
    if resolved.kind == "ext":
        kind = _EXT_KINDS.get(resolved.id)
        if kind in _FD_KINDS:
            return True
        if resolved.id.startswith("builtins.") and resolved.elem is not None:
            return _is_fd_resource(resolved.elem, backed)
        return False
    return resolved.id in backed


class ResourceLifecyclePass(ProjectPass):
    name = "resource-lifecycle"
    codes = (
        "leaked-resource",
        "leak-on-exception",
        "popen-pipe-leak",
        "unjoined-thread",
        "owned-unreleased",
    )
    description = (
        "Track socket/Popen/HTTPConnection/pipe/Thread/selector/"
        "SharedMemory handles from acquisition to release on every exit "
        "path, with escape analysis for ownership transfer and "
        "self-stored handles."
    )

    def run(self, model: ProjectModel) -> tuple[list[Finding], dict]:
        backed = _resource_backed_classes(model)
        findings: list[Finding] = []
        for funcid in sorted(model.functions):
            findings.extend(self._check_function(model, funcid, backed))
        return findings, {}

    # -- per-function --------------------------------------------------------

    def _classify(
        self, model: ProjectModel, term: dict, module: str, classid: str | None,
        backed: set[str],
    ) -> str | None:
        resolved = model.resolve_type(term, module, classid)
        if resolved is None:
            return None
        if resolved.kind == "ext":
            return _EXT_KINDS.get(resolved.id)
        return "object" if resolved.id in backed else None

    def _check_function(
        self, model: ProjectModel, funcid: str, backed: set[str]
    ) -> list[Finding]:
        fn = model.functions[funcid]
        module, classid = model.function_context(funcid)
        events = fn["resources"]
        if not any(e["event"] == "acquire" for e in events):
            return []
        path = model.path_of(funcid)
        qual = funcid[len(module) + 1 :]

        releases: dict[str, list[dict]] = {}
        container_releases: dict[str, list[dict]] = {}
        escapes: dict[str, list[dict]] = {}
        for event in events:
            if event["event"] == "release" and event.get("var"):
                releases.setdefault(event["var"], []).append(event)
            elif event["event"] == "container-release":
                container_releases.setdefault(event["container"], []).append(event)
            elif event["event"] == "escape":
                escapes.setdefault(event["var"], []).append(event)

        ctor_args = self._ctor_arg_vars(model, fn, module, classid)

        findings: list[Finding] = []
        for event in events:
            if event["event"] != "acquire":
                continue
            kind = self._classify(model, event["term"], module, classid, backed)
            if kind is None:
                continue
            if self._is_borrowed(model, event["term"], module, classid):
                continue  # accessor return: owned by the callee's object
            findings.extend(
                self._verdict(
                    model=model,
                    event=event,
                    kind=kind,
                    releases=releases,
                    container_releases=container_releases,
                    escapes=escapes,
                    ctor_args=ctor_args,
                    path=path,
                    qual=qual,
                    classid=classid,
                )
            )
        return findings

    def _is_borrowed(
        self, model: ProjectModel, term: dict, module: str, classid: str | None
    ) -> bool:
        """True when the acquiring call is an accessor that returns a
        self-owned attribute (``self._connect()`` handing back the cached
        ``self._connection``) — the callee's object owns the handle."""
        if term.get("t") == "ret":
            call = {"name": term["name"], "chain": None, "recv": term["recv"]}
        elif term.get("t") == "retf":
            call = {
                "name": term["name"].rpartition(".")[2],
                "chain": term["name"],
                "recv": None,
            }
        else:
            return False
        target = model.resolve_call(call, module, classid)
        if target is None or target[0] != "fn":
            return False
        return bool(model.functions[target[1]].get("returns_self_attr"))

    def _ctor_arg_vars(
        self, model: ProjectModel, fn: dict, module: str, classid: str | None
    ) -> set[str]:
        """Vars handed to a constructor — ownership transfers to the object."""
        transferred: set[str] = set()
        for op in fn["taint"]:
            if op["op"] != "call" or not any(op["args"]):
                continue
            call = {"name": op["name"], "chain": op["chain"], "recv": op["recv"]}
            target = model.resolve_call(call, module, classid)
            if target and target[0] == "ctor":
                transferred.update(v for v in op["args"] if v)
        return transferred

    def _verdict(
        self,
        *,
        model: ProjectModel,
        event: dict,
        kind: str,
        releases: dict[str, list[dict]],
        container_releases: dict[str, list[dict]],
        escapes: dict[str, list[dict]],
        ctor_args: set[str],
        path: str,
        qual: str,
        classid: str | None,
    ) -> list[Finding]:
        var = event["var"]
        line = event["line"]

        def finding(code: str, message: str) -> Finding:
            return Finding(
                path=path, line=line, col=1, rule=self.name, code=code,
                message=message, symbol=qual,
            )

        var_releases = releases.get(var, []) if var else []
        var_container = (
            container_releases.get(event.get("container") or "", [])
            if event.get("container")
            else []
        )
        pipe_closed = any(r.get("sub_attr") for r in var_releases)
        plain_releases = [r for r in var_releases if not r.get("sub_attr")]
        released = bool(plain_releases or var_container)
        protected = any(r["protected"] for r in plain_releases) or any(
            r["protected"] for r in var_container
        )
        var_escapes = escapes.get(var, []) if var else []
        returned = any(e["kind"] == "return" for e in var_escapes)
        stored_attr = event.get("stored_attr") or next(
            (e.get("attr") for e in var_escapes if e["kind"] == "self"), None
        )
        transferred = var in ctor_args if var else False

        out: list[Finding] = []

        # Popen with inherited pipes, reaped locally: the pipe fd must be
        # closed where the process is reaped, whatever else happens.
        if (
            kind == "popen"
            and event["pipes"]
            and plain_releases
            and not pipe_closed
        ):
            out.append(
                finding(
                    "popen-pipe-leak",
                    f"Popen({'/'.join(event['pipes'])}=PIPE) is terminated here "
                    "but its pipe fd is never closed on this path "
                    "(close process.stdout/stderr where the process is reaped)",
                )
            )

        if event["managed"]:
            return out

        if stored_attr is not None:
            if classid is not None and kind != "thread" or (
                classid is not None and kind == "thread" and not event["daemon"]
            ):
                cls = model.classes.get(classid or "")
                release_sites = cls["release_sites"] if cls else {}
                if classid is not None and stored_attr not in release_sites:
                    out.append(
                        Finding(
                            path=path, line=line, col=1, rule=self.name,
                            code="owned-unreleased",
                            message=(
                                f"self.{stored_attr} holds a {kind} resource but "
                                f"no method of {classid.rsplit('.', 1)[1]} "
                                "releases it"
                            ),
                            symbol=qual,
                        )
                    )
            return out

        if kind == "thread":
            if (
                event["daemon"]
                or released
                or returned
                or transferred
                or event.get("container")
            ):
                return out
            out.append(
                finding(
                    "unjoined-thread",
                    "non-daemon Thread is started but never joined, stored, "
                    "or handed off — process shutdown will hang on it",
                )
            )
            return out

        # fd-bearing kinds.
        if returned or transferred:
            return out
        if not released:
            out.append(
                finding(
                    "leaked-resource",
                    f"{kind} resource acquired here is never released on any "
                    "path (no close/terminate/join, no escape)",
                )
            )
            return out
        if not protected:
            out.append(
                finding(
                    "leak-on-exception",
                    f"{kind} resource is released only on the non-exception "
                    "path; an exception before the release leaks the handle "
                    "(release it in a finally block or use a with statement)",
                )
            )
        return out
