"""API-surface pass: import hygiene, ``__all__``, deprecation, and layering.

Absorbs the old ``tools/lint_imports.py`` rules and extends them:

* ``unused-import`` — a module- or function-level import whose bound name
  is never loaded. Uses include attribute chains, decorators, annotations
  (the repo uses ``from __future__ import annotations``, so they stay
  ordinary expressions), and ``__all__`` entries.
* ``missing-from-all`` — a module that declares ``__all__`` but binds a
  public name at module level that the list omits. Imported names are
  exempt (re-exports are opt-in); modules without ``__all__`` are skipped.
* ``deprecated-name`` — importing or referencing a name the deprecation
  policy already removed (the PR 2 calibration shims). Once a spelling is
  gone it must not be reintroduced by a new call site.
* ``cross-layer-import`` — a ``repro`` subpackage importing from a higher
  layer (``repro.imaging`` importing ``repro.serving``). The layer ranks
  encode the dependency DAG the repo actually has; anything new that
  points upward is a cycle waiting to happen.
"""

from __future__ import annotations

import ast

from analyze.findings import Finding
from analyze.passes.base import AnalysisPass, PassContext

__all__ = ["ApiSurfacePass", "LAYER_RANKS", "DEPRECATED_NAMES"]

#: Method spellings removed under the deprecation policy; referencing one
#: as an attribute is an error. PR 2 removed the ``Detector.calibrate_*``
#: shims, but the module-level functions in ``repro.core.thresholds`` are
#: stable API — so an owner listed in ``allowed_owners`` (the rightmost
#: name of the attribute chain being called on) is exempt.
DEPRECATED_NAMES: dict[str, dict] = {
    "calibrate_whitebox": {
        "hint": "use calibrate(..., strategy='midpoint'/'sigma') "
        "(repro.core.thresholds.calibrate_whitebox remains stable API)",
        "allowed_owners": {"thresholds"},
    },
    "calibrate_blackbox": {
        "hint": "use calibrate(..., strategy='percentile') "
        "(repro.core.thresholds.calibrate_blackbox remains stable API)",
        "allowed_owners": {"thresholds"},
    },
}


def _owner_leaf(node: ast.Attribute) -> str:
    """Rightmost name of the owner expression: ``a.b.thresholds`` -> ``thresholds``."""
    owner = node.value
    if isinstance(owner, ast.Attribute):
        return owner.attr
    if isinstance(owner, ast.Name):
        return owner.id
    return ""

#: ``repro`` subpackage -> layer rank. A module may import another
#: subpackage only when the target's rank is strictly lower; imports
#: inside one subpackage are always allowed. The ranks encode today's
#: dependency DAG: errors < {imaging, observability} < {attacks, datasets}
#: < {core, ml, defenses} < {eval, serving} < loadlab < testing < cli.
LAYER_RANKS = {
    "errors": 0,
    "observability": 10,
    "imaging": 10,
    "attacks": 20,
    "datasets": 20,
    "core": 30,
    "ml": 30,
    "defenses": 30,
    "eval": 40,
    "serving": 40,
    "loadlab": 45,
    "testing": 47,
    "cli": 50,
    "__main__": 60,
}


def _imported_names(node: ast.Import | ast.ImportFrom) -> list[tuple[str, str]]:
    """(bound name, display name) pairs an import statement introduces."""
    pairs = []
    for alias in node.names:
        if alias.name == "*":
            continue
        bound = alias.asname or alias.name.split(".")[0]
        pairs.append((bound, alias.asname or alias.name))
    return pairs


def _used_names(tree: ast.AST) -> set[str]:
    """Every identifier the module loads anywhere (all scopes)."""
    return {
        node.id
        for node in ast.walk(tree)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def _dunder_all(tree: ast.Module) -> tuple[list[str] | None, set[str]]:
    """(declared __all__ or None, names listed in it)."""
    for node in tree.body:
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    return None, set()
                names = [str(item) for item in value]
                return names, set(names)
    return None, set()


def _public_module_bindings(tree: ast.Module) -> dict[str, int]:
    """Public names bound by module-level statements (not imports) -> line."""
    public: dict[str, int] = {}

    def add(name: str, line: int) -> None:
        if not name.startswith("_") and name not in public:
            public[name] = line

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            add(node.name, node.lineno)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    add(target.id, node.lineno)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            add(element.id, node.lineno)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                add(node.target.id, node.lineno)
    return public


def _subpackage_of(module: str) -> str | None:
    """``repro.serving.server`` -> ``serving``; non-repro modules -> None.

    The package root (``repro``/``repro.__init__``) may import anything:
    re-exporting the public surface is its job.
    """
    parts = module.split(".")
    if not parts or parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def _import_targets(
    node: ast.Import | ast.ImportFrom, module: str
) -> list[str]:
    """Absolute dotted module paths an import statement pulls in."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if node.level:  # relative import: resolve against the current module
        base = module.split(".")
        base = base[: len(base) - node.level]
        prefix = ".".join(base)
        target = f"{prefix}.{node.module}" if node.module else prefix
        return [target]
    return [node.module] if node.module else []


class ApiSurfacePass(AnalysisPass):
    name = "api-surface"
    codes = (
        "unused-import",
        "missing-from-all",
        "deprecated-name",
        "cross-layer-import",
    )
    description = "unused imports, __all__ completeness, deprecations, layering"

    def run(self, context: PassContext) -> list[Finding]:
        tree = context.tree
        findings: list[Finding] = []
        used = _used_names(tree)
        all_names, all_set = _dunder_all(tree)

        own_subpackage = _subpackage_of(context.module) if context.module else None
        own_rank = LAYER_RANKS.get(own_subpackage) if own_subpackage else None

        for node in ast.walk(tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if isinstance(node, ast.ImportFrom) and node.module == "__future__":
                continue
            for bound, display in _imported_names(node):
                if bound not in used and bound not in all_set:
                    findings.append(
                        context.finding(
                            node,
                            self.name,
                            "unused-import",
                            f"unused import '{display}'",
                        )
                    )
                leaf = display.rpartition(".")[2]
                spec = DEPRECATED_NAMES.get(leaf)
                if spec is not None and isinstance(node, ast.ImportFrom):
                    source = (node.module or "").rpartition(".")[2]
                    if source not in spec["allowed_owners"]:
                        findings.append(
                            context.finding(
                                node,
                                self.name,
                                "deprecated-name",
                                f"import of removed name '{leaf}'; {spec['hint']}",
                            )
                        )
            if own_rank is not None:
                findings.extend(self._check_layering(context, node, own_rank))

        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in DEPRECATED_NAMES
                and isinstance(node.ctx, ast.Load)
            ):
                spec = DEPRECATED_NAMES[node.attr]
                if _owner_leaf(node) in spec["allowed_owners"]:
                    continue
                findings.append(
                    context.finding(
                        node,
                        self.name,
                        "deprecated-name",
                        f"reference to removed method spelling "
                        f"'.{node.attr}'; {spec['hint']}",
                    )
                )

        if all_names is not None:
            listed = all_set | {"__all__"}
            for name, line in sorted(_public_module_bindings(tree).items()):
                if name not in listed:
                    findings.append(
                        Finding(
                            path=context.path,
                            line=line,
                            col=1,
                            rule=self.name,
                            code="missing-from-all",
                            message=f"public name '{name}' missing from __all__",
                            symbol="",
                        )
                    )
        return findings

    def _check_layering(
        self,
        context: PassContext,
        node: ast.Import | ast.ImportFrom,
        own_rank: int,
    ) -> list[Finding]:
        findings: list[Finding] = []
        own_subpackage = _subpackage_of(context.module)
        for target in _import_targets(node, context.module):
            target_subpackage = _subpackage_of(target)
            if target_subpackage is None or target_subpackage == own_subpackage:
                continue
            target_rank = LAYER_RANKS.get(target_subpackage)
            if target_rank is None or target_rank < own_rank:
                continue
            findings.append(
                context.finding(
                    node,
                    self.name,
                    "cross-layer-import",
                    f"'{context.module}' (layer '{own_subpackage}') imports "
                    f"'{target}' (layer '{target_subpackage}'): lower layers "
                    f"must not depend on equal or higher layers",
                )
            )
        return findings
