"""Pass registry: every analysis pass the framework ships.

Two kinds of pass live here:

* **per-file passes** (``ALL_PASSES``) — run in phase 1 over one parsed
  file at a time, fan out across processes, cache per file;
* **project passes** (``PROJECT_PASSES``) — run in phase 2 over the
  merged whole-program model built from every file's summary.

``known_rules()`` spans both; ``--rules`` accepts any mix and the engine
routes each name to the right phase.
"""

from __future__ import annotations

from analyze.passes.api_surface import ApiSurfacePass
from analyze.passes.base import AnalysisPass, PassContext
from analyze.passes.exception_policy import ExceptionPolicyPass
from analyze.passes.lock_discipline import LockDisciplinePass
from analyze.passes.lock_order import LockOrderPass
from analyze.passes.resource_lifecycle import ResourceLifecyclePass
from analyze.passes.taint_wire import TaintWirePass
from analyze.passes.validation_boundary import ValidationBoundaryPass
from analyze.project import ProjectPass

__all__ = [
    "AnalysisPass",
    "PassContext",
    "ProjectPass",
    "ALL_PASSES",
    "PROJECT_PASSES",
    "get_passes",
    "get_project_passes",
    "known_rules",
]

#: Registration order is report order.
ALL_PASSES: tuple[type[AnalysisPass], ...] = (
    LockDisciplinePass,
    ValidationBoundaryPass,
    ExceptionPolicyPass,
    ApiSurfacePass,
)

#: Phase-2 whole-program passes over the merged summary model.
PROJECT_PASSES: tuple[type[ProjectPass], ...] = (
    LockOrderPass,
    ResourceLifecyclePass,
    TaintWirePass,
)


def known_rules() -> list[str]:
    return [cls.name for cls in ALL_PASSES + PROJECT_PASSES]


def _validate(rules: list[str]) -> None:
    unknown = set(rules) - set(known_rules())
    if unknown:
        raise ValueError(
            f"unknown rule(s) {sorted(unknown)}; known: {known_rules()}"
        )


def get_passes(rules: list[str] | None = None) -> list[AnalysisPass]:
    """Instantiate the requested per-file passes (all by default).

    Project rule names in *rules* are valid and simply not per-file —
    they select phase-2 passes via :func:`get_project_passes`.
    """
    if rules is None:
        return [cls() for cls in ALL_PASSES]
    _validate(rules)
    return [cls() for cls in ALL_PASSES if cls.name in rules]


def get_project_passes(rules: list[str] | None = None) -> list[ProjectPass]:
    """Instantiate the requested project passes (all by default)."""
    if rules is None:
        return [cls() for cls in PROJECT_PASSES]
    _validate(rules)
    return [cls() for cls in PROJECT_PASSES if cls.name in rules]
