"""Pass registry: every analysis pass the framework ships."""

from __future__ import annotations

from analyze.passes.api_surface import ApiSurfacePass
from analyze.passes.base import AnalysisPass, PassContext
from analyze.passes.exception_policy import ExceptionPolicyPass
from analyze.passes.lock_discipline import LockDisciplinePass
from analyze.passes.validation_boundary import ValidationBoundaryPass

__all__ = [
    "AnalysisPass",
    "PassContext",
    "ALL_PASSES",
    "get_passes",
    "known_rules",
]

#: Registration order is report order.
ALL_PASSES: tuple[type[AnalysisPass], ...] = (
    LockDisciplinePass,
    ValidationBoundaryPass,
    ExceptionPolicyPass,
    ApiSurfacePass,
)


def known_rules() -> list[str]:
    return [cls.name for cls in ALL_PASSES]


def get_passes(rules: list[str] | None = None) -> list[AnalysisPass]:
    """Instantiate the requested passes (all of them by default)."""
    if rules is None:
        return [cls() for cls in ALL_PASSES]
    unknown = set(rules) - set(known_rules())
    if unknown:
        raise ValueError(
            f"unknown rule(s) {sorted(unknown)}; known: {known_rules()}"
        )
    return [cls() for cls in ALL_PASSES if cls.name in rules]
