"""Exception-policy pass: no silent swallowing in library code.

A detector that converts a crash into a silently-absent verdict is worse
than one that crashes: the serving path's contract is that every accepted
request produces an audit record and an explicit verdict, and every error
is surfaced as a typed :class:`repro.errors.ReproError` subclass or a
logged boundary event. Two codes:

* ``bare-except`` — ``except:`` catches ``SystemExit``/``KeyboardInterrupt``
  too and is never what library code means. Always flagged.
* ``swallowed-exception`` — ``except Exception`` (or ``BaseException``)
  whose handler neither re-raises, nor logs (any call whose name contains
  ``log``/``warn``/``error``/``print``/``debug``), nor even *reads* the
  bound exception. Handlers that record the exception somewhere — a load
  generator appending ``(status, exc)`` to its results — are fine; the
  rule only fires when the exception is provably discarded.

CLI entry points and HTTP request-handler boundaries that intentionally
catch-all should carry an inline ``# analyze: ignore[swallowed-exception]``
with the justification, keeping every such boundary greppable.
"""

from __future__ import annotations

import ast

from analyze.findings import Finding
from analyze.passes.base import AnalysisPass, PassContext

__all__ = ["ExceptionPolicyPass"]

_BROAD = {"Exception", "BaseException"}
_LOGGING_FRAGMENTS = ("log", "warn", "error", "print", "debug", "report")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return False
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in _BROAD:
            return True
        if isinstance(candidate, ast.Attribute) and candidate.attr in _BROAD:
            return True
    return False


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _handler_logs(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if any(fragment in name.lower() for fragment in _LOGGING_FRAGMENTS):
            return True
    return False


def _handler_uses_exception(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    return any(
        isinstance(node, ast.Name)
        and node.id == handler.name
        and isinstance(node.ctx, ast.Load)
        for node in ast.walk(handler)
    )


class ExceptionPolicyPass(AnalysisPass):
    name = "exception-policy"
    codes = ("bare-except", "swallowed-exception")
    description = "no bare except; broad handlers must re-raise, log, or record"

    def run(self, context: PassContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    context.finding(
                        node,
                        self.name,
                        "bare-except",
                        "bare 'except:' also catches SystemExit/"
                        "KeyboardInterrupt; name the exceptions (or "
                        "'except Exception' plus logging at a boundary)",
                    )
                )
                continue
            if not _is_broad(node):
                continue
            if (
                _handler_reraises(node)
                or _handler_logs(node)
                or _handler_uses_exception(node)
            ):
                continue
            findings.append(
                context.finding(
                    node,
                    self.name,
                    "swallowed-exception",
                    "'except Exception' that neither re-raises, logs, nor "
                    "reads the exception silently discards failures; "
                    "narrow it or record the error",
                )
            )
        return findings
