"""Lock-discipline pass: the concurrency contracts the serving path relies on.

Decamouflage's reproduction claim is that verdicts are deterministic under
any interleaving; that only holds while every class that owns a
``threading.Lock``/``RLock``/``Condition`` touches its shared state in a
disciplined way. This pass infers, per class:

* **lock attributes** — ``self._lock = threading.Lock()`` (or ``RLock`` /
  ``Condition``) anywhere in the class;
* **lock-associated attributes** — non-method instance attributes read or
  written inside any ``with self._lock:`` block. Being touched under the
  lock once is the class's own declaration that the attribute is shared.

and emits three codes:

* ``unguarded-write`` — a write to a lock-associated attribute outside any
  ``with``-lock block, outside ``__init__``. Methods named ``*_locked`` or
  whose docstring says the caller holds the lock are exempt (that is the
  repo's documented convention for helpers like
  ``ProtectedPipeline._count``).
* ``bare-acquire`` — calling ``.acquire()`` on a lock attribute instead of
  using it as a context manager; an exception between ``acquire`` and
  ``release`` leaks the lock forever.
* ``io-under-lock`` — file/socket I/O, thread joins, or stored-callback
  invocation inside a ``with``-lock block (or anywhere in a
  caller-holds-the-lock method). This is the exact bug class PR 1 fixed by
  moving audit-log writes out of the pipeline lock: one slow disk
  serialized every concurrent submission.
"""

from __future__ import annotations

import ast

from analyze.findings import Finding
from analyze.passes.base import AnalysisPass, PassContext, call_name

__all__ = ["LockDisciplinePass"]

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: Plain-name calls that do I/O.
_IO_NAME_CALLS = {"open", "print", "write_png", "read_png", "write_ppm", "read_ppm"}

#: Method calls that do blocking I/O (or block on other threads).
_IO_ATTR_CALLS = {
    "open",
    "write",
    "writelines",
    "read",
    "readline",
    "readlines",
    "flush",
    "recv",
    "send",
    "sendall",
    "sendfile",
    "connect",
    "accept",
    "join",
    "unlink",
    "replace",
    "rename",
    "stat",
    "mkdir",
    "touch",
    "write_text",
    "read_text",
    "write_bytes",
    "read_bytes",
}

_HOLDS_LOCK_MARKERS = ("caller holds the lock", "holds the lock", "callers hold the lock")


def _is_self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_attrs_of_class(cls: ast.ClassDef) -> set[str]:
    """Attributes assigned a Lock/RLock/Condition anywhere in the class."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (isinstance(value, ast.Call) and call_name(value) in _LOCK_FACTORIES):
            continue
        for target in node.targets:
            attr = _is_self_attr(target)
            if attr:
                locks.add(attr)
    return locks


def _method_defs(cls: ast.ClassDef) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _holds_lock_by_convention(method: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    if method.name.endswith("_locked"):
        return True
    doc = ast.get_docstring(method) or ""
    return any(marker in doc.lower() for marker in _HOLDS_LOCK_MARKERS)


def _with_lock_blocks(
    method: ast.AST, lock_attrs: set[str]
) -> list[tuple[ast.With, str]]:
    """Every ``with self.<lock>:`` statement in *method* with its lock name."""
    blocks: list[tuple[ast.With, str]] = []
    for node in ast.walk(method):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            attr = _is_self_attr(item.context_expr)
            if attr in lock_attrs:
                blocks.append((node, attr))
                break
    return blocks


def _attr_stores(node: ast.AST) -> list[tuple[str, ast.AST]]:
    """(attribute, node) for every ``self.X = / += ...`` inside *node*.

    Nested targets like ``self.stats.submitted += 1`` count as a write to
    the root attribute (``stats``): mutating an object hanging off self is
    still mutation of shared state.
    """
    stores: list[tuple[str, ast.AST]] = []
    for child in ast.walk(node):
        targets: list[ast.AST] = []
        if isinstance(child, ast.Assign):
            targets = list(child.targets)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            targets = [child.target]
        for target in targets:
            root = target
            while isinstance(root, (ast.Attribute, ast.Subscript)) and not (
                isinstance(root, ast.Attribute)
                and isinstance(root.value, ast.Name)
                and root.value.id == "self"
            ):
                root = root.value
            attr = _is_self_attr(root)
            if attr:
                stores.append((attr, target))
    return stores


def _attrs_touched(node: ast.AST) -> set[str]:
    """Every ``self.X`` attribute loaded or stored inside *node*."""
    touched: set[str] = set()
    for child in ast.walk(node):
        attr = _is_self_attr(child)
        if attr:
            touched.add(attr)
    return touched


class LockDisciplinePass(AnalysisPass):
    name = "lock-discipline"
    codes = ("unguarded-write", "bare-acquire", "io-under-lock")
    description = "shared-state writes, acquire(), and I/O relative to owned locks"

    def run(self, context: PassContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(context, node))
        return findings

    # -- per-class -----------------------------------------------------------

    def _check_class(self, context: PassContext, cls: ast.ClassDef) -> list[Finding]:
        lock_attrs = _lock_attrs_of_class(cls)
        if not lock_attrs:
            return []
        methods = _method_defs(cls)
        method_names = {m.name for m in methods}

        # Infer which attributes the class itself treats as lock-guarded.
        guarded: set[str] = set()
        locked_nodes: list[tuple[ast.AST, str, str]] = []  # (block, lock, method)
        for method in methods:
            for block, lock in _with_lock_blocks(method, lock_attrs):
                guarded |= _attrs_touched(block)
                locked_nodes.append((block, lock, method.name))
            if _holds_lock_by_convention(method) and method.name != "__init__":
                # The whole body runs under a caller's lock.
                locked_nodes.append((method, "<caller>", method.name))
        guarded -= lock_attrs
        guarded -= method_names

        findings: list[Finding] = []
        findings.extend(
            self._check_unguarded_writes(context, cls, methods, lock_attrs, guarded)
        )
        findings.extend(self._check_bare_acquire(context, cls, lock_attrs))
        for block, lock, method_name in locked_nodes:
            findings.extend(
                self._check_io_under_lock(
                    context, block, lock, method_name, method_names, lock_attrs
                )
            )
        return findings

    def _check_unguarded_writes(
        self,
        context: PassContext,
        cls: ast.ClassDef,
        methods: list,
        lock_attrs: set[str],
        guarded: set[str],
    ) -> list[Finding]:
        findings: list[Finding] = []
        if not guarded:
            return findings
        for method in methods:
            if method.name == "__init__" or _holds_lock_by_convention(method):
                continue
            locked_spans = [
                (block.lineno, block.end_lineno or block.lineno)
                for block, _ in _with_lock_blocks(method, lock_attrs)
            ]
            for attr, target in _attr_stores(method):
                if attr not in guarded or attr in lock_attrs:
                    continue
                line = getattr(target, "lineno", method.lineno)
                if any(start <= line <= end for start, end in locked_spans):
                    continue
                findings.append(
                    context.finding(
                        target,
                        self.name,
                        "unguarded-write",
                        f"'{cls.name}.{method.name}' writes lock-associated "
                        f"attribute 'self.{attr}' outside any "
                        f"'with self.<lock>' block",
                    )
                )
        return findings

    def _check_bare_acquire(
        self, context: PassContext, cls: ast.ClassDef, lock_attrs: set[str]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(cls):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "acquire"):
                continue
            attr = _is_self_attr(func.value)
            if attr in lock_attrs:
                findings.append(
                    context.finding(
                        node,
                        self.name,
                        "bare-acquire",
                        f"'self.{attr}.acquire()' without a context manager; "
                        f"an exception before release() leaks the lock — "
                        f"use 'with self.{attr}:'",
                    )
                )
        return findings

    def _check_io_under_lock(
        self,
        context: PassContext,
        scope: ast.AST,
        lock: str,
        method_name: str,
        method_names: set[str],
        lock_attrs: set[str],
    ) -> list[Finding]:
        held = f"self.{lock}" if lock != "<caller>" else "a caller-held lock"
        findings: list[Finding] = []
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            is_io = False
            why = ""
            if isinstance(node.func, ast.Name) and name in _IO_NAME_CALLS:
                is_io, why = True, f"call to '{name}()'"
            elif isinstance(node.func, ast.Attribute) and name in _IO_ATTR_CALLS:
                # Skip lock.acquire-style calls on the locks themselves.
                if _is_self_attr(node.func.value) in lock_attrs:
                    continue
                is_io, why = True, f"call to '.{name}()'"
            elif isinstance(node.func, ast.Attribute):
                attr = _is_self_attr(node.func)
                if attr and attr not in method_names and attr not in lock_attrs:
                    # ``self.X(...)`` where X is not a method: a stored
                    # user callback invoked while the lock is held can
                    # re-enter the class or block indefinitely.
                    is_io = True
                    why = f"stored callback 'self.{attr}(...)'"
            if is_io:
                findings.append(
                    context.finding(
                        node,
                        self.name,
                        "io-under-lock",
                        f"{why} in '{method_name}' while holding {held}; "
                        f"I/O and callbacks under a lock serialize every "
                        f"waiter on one slow operation",
                    )
                )
        return findings
