"""Project pass: the global lock-acquisition-order graph.

Builds one directed graph over every lock in the program — a lock is a
``self.<attr> = threading.Lock()/RLock()/Condition()`` site, identified as
``module.Class.attr`` — and adds an edge ``A -> B`` whenever B can be
acquired while A is held:

* two lexically nested ``with self.<lock>:`` spans in one function, or
* a call made inside a held span whose callee (resolved through the
  cross-module call graph) *may acquire* B, computed transitively to a
  fixpoint.

Receivers that cannot be resolved are skipped — no guessed edges.

Findings:

* **``lock-cycle``** — a strongly connected component in the graph: two
  locks each takeable while the other is held, i.e. a potential deadlock
  the thread scheduler gets to choose when to exhibit.
* **``undeclared-order``** — a nested-acquire edge with no declared order
  in ``tools/analyze/lock_order.json``. The contract file is the reviewed
  list of blessed orderings; a new nesting must be declared (one JSON
  line) or restructured.
* **``leaf-violation``** — a lock listed in the contract's ``leaf_locks``
  acquires another lock while held. Leaf status is the strongest ordering
  contract a lock can carry: the event-loop completion lock and the shm
  ring slot-scan lock sit on the per-request hot path and are declared
  leaf so no future change can quietly hang the selector loop or a
  dispatcher handler thread under them. Enforced statically here and at
  runtime by ``--locksan-check``.

The full graph is emitted as an artifact (JSON + DOT via ``--lock-graph``)
and is the static half of the runtime cross-check performed by
``repro.testing.locksan`` (``--locksan-check``).
"""

from __future__ import annotations

import json
from pathlib import Path

from analyze.findings import Finding
from analyze.project import ProjectModel, ProjectPass

__all__ = [
    "LockOrderPass",
    "build_lock_graph",
    "render_dot",
    "load_contract",
    "reconcile_locksan",
]

_CONTRACT_PATH = Path(__file__).resolve().parent.parent / "lock_order.json"


def load_contract(path: Path | None = None) -> dict:
    contract_path = path or _CONTRACT_PATH
    if not contract_path.exists():
        return {"version": 1, "edges": [], "runtime_only": []}
    return json.loads(contract_path.read_text(encoding="utf-8"))


def _lock_ids_of(model: ProjectModel, classid: str) -> dict[str, str]:
    """attr -> lock id for every lock attr visible on *classid* (with MRO)."""
    out: dict[str, str] = {}
    for cid in model._mro(classid):
        cls = model.classes.get(cid)
        if cls is None:
            continue
        for attr in cls["lock_attrs"]:
            out.setdefault(attr, f"{cid}.{attr}")
    return out


def build_lock_graph(model: ProjectModel) -> dict:
    """The acquisition-order graph: locks, edges with witness sites."""
    # Every lock in the program.
    locks: dict[str, dict] = {}
    for classid, cls in sorted(model.classes.items()):
        module = classid.rsplit(".", 1)[0]
        for attr, info in sorted(cls["lock_attrs"].items()):
            locks[f"{classid}.{attr}"] = {
                "id": f"{classid}.{attr}",
                "kind": info["kind"],
                "path": model.path_of(module),
                "line": info["line"],
            }

    # Per-function held spans, in terms of global lock ids. The span's
    # receiver is resolved through the type terms, so both
    # ``with self._lock:`` and ``with handle.send_lock:`` count.
    spans: dict[str, list[dict]] = {}
    for funcid, fn in model.functions.items():
        module, classid = model.function_context(funcid)
        held = []
        for span in fn["lock_spans"]:
            recv = model.resolve_type(span.get("recv"), module, classid)
            if recv is None or recv.kind != "cls":
                continue
            lock_ids = _lock_ids_of(model, recv.id)
            if span["attr"] in lock_ids:
                held.append(
                    {
                        "lock": lock_ids[span["attr"]],
                        "start": span["start"],
                        "end": span["end"],
                    }
                )
        if held:
            spans[funcid] = held

    # may_acquire: lock ids a function can take, transitively, to fixpoint.
    resolved_calls: dict[str, list[tuple[dict, str]]] = {}
    for funcid, fn in model.functions.items():
        module, classid = model.function_context(funcid)
        targets = []
        for call in fn["calls"]:
            target = model.resolve_call(call, module, classid)
            if target is None:
                continue
            kind, who = target
            if kind == "ctor":
                who = model.find_method(who, "__init__")
                if who is None:
                    continue
                kind = "fn"
            if kind == "fn":
                targets.append((call, who))
        resolved_calls[funcid] = targets

    may_acquire: dict[str, set[str]] = {
        funcid: {s["lock"] for s in spans.get(funcid, [])}
        for funcid in model.functions
    }
    changed = True
    while changed:
        changed = False
        for funcid, targets in resolved_calls.items():
            acc = may_acquire[funcid]
            before = len(acc)
            for _call, callee in targets:
                acc |= may_acquire.get(callee, set())
            if len(acc) != before:
                changed = True

    # Edges: nested spans + calls under a held span.
    edges: dict[tuple[str, str], list[dict]] = {}

    def add_edge(a: str, b: str, path: str, line: int, via: str) -> None:
        if a == b:
            return  # reentrant self-acquire is the lock kind's business
        sites = edges.setdefault((a, b), [])
        if not any(s["path"] == path and s["line"] == line for s in sites):
            sites.append({"path": path, "line": line, "via": via})

    for funcid, held in spans.items():
        path = model.path_of(funcid)
        module = model.function_module[funcid]
        qual = funcid[len(module) + 1 :]
        for outer in held:
            for inner in held:
                if inner is outer:
                    continue
                if outer["start"] < inner["start"] and inner["end"] <= outer["end"]:
                    add_edge(outer["lock"], inner["lock"], path, inner["start"], qual)
            for call, callee in resolved_calls.get(funcid, []):
                if outer["start"] <= call["line"] <= outer["end"]:
                    for lock in sorted(may_acquire.get(callee, ())):
                        add_edge(outer["lock"], lock, path, call["line"], qual)

    contract = load_contract(
        Path(p) if (p := model.options.get("lock_contract_path")) else None
    )
    declared = {tuple(edge) for edge in contract.get("edges", [])}
    leaf = set(contract.get("leaf_locks", []))

    graph_edges = [
        {
            "from": a,
            "to": b,
            "declared": (a, b) in declared,
            "sites": sorted(sites, key=lambda s: (s["path"], s["line"])),
        }
        for (a, b), sites in sorted(edges.items())
    ]
    cycles = _find_cycles({a: set() for a in locks} | _adjacency(edges))
    return {
        "version": 1,
        "locks": sorted(locks.values(), key=lambda lock: lock["id"]),
        "edges": graph_edges,
        "cycles": cycles,
        "contract": sorted(contract.get("edges", [])),
        "leaf_contract": sorted(leaf),
    }


def _adjacency(edges: dict[tuple[str, str], list[dict]]) -> dict[str, set[str]]:
    adj: dict[str, set[str]] = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
    return adj


def _find_cycles(adj: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components with more than one node (Tarjan)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(v: str) -> None:
        # Iterative Tarjan — analyzer inputs can nest arbitrarily deep.
        work = [(v, iter(sorted(adj.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, neighbors = work[-1]
            advanced = False
            for w in neighbors:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(adj.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

    for v in sorted(adj):
        if v not in index:
            strongconnect(v)
    return sorted(sccs)


def render_dot(graph: dict) -> str:
    """Graphviz DOT rendering of the lock-order graph artifact."""
    cycle_nodes = {node for cycle in graph["cycles"] for node in cycle}
    out = ["digraph lock_order {", "  rankdir=LR;", "  node [shape=box];"]
    for lock in graph["locks"]:
        attrs = [f'label="{lock["id"]}\\n({lock["kind"]})"']
        if lock["id"] in cycle_nodes:
            attrs.append('color=red')
        out.append(f'  "{lock["id"]}" [{", ".join(attrs)}];')
    for edge in graph["edges"]:
        attrs = []
        if not edge["declared"]:
            attrs.append("style=dashed")
        if edge["from"] in cycle_nodes and edge["to"] in cycle_nodes:
            attrs.append("color=red")
        suffix = f' [{", ".join(attrs)}]' if attrs else ""
        out.append(f'  "{edge["from"]}" -> "{edge["to"]}"{suffix};')
    out.append("}")
    return "\n".join(out) + "\n"


def reconcile_locksan(
    dump: dict, graph: dict, contract: dict
) -> tuple[list[str], list[str]]:
    """Cross-check a ``repro.testing.locksan`` runtime dump.

    Runtime locks are matched to static graph nodes by construction site
    (the dump's absolute ``file`` must end with the static node's
    repo-relative ``path``, same ``line``). Returns ``(errors, notes)``:
    errors are runtime cycles and observed edges absent from the static
    graph, the declared contract, and the contract's ``runtime_only``
    list; notes report match coverage so CI logs show what actually ran.
    """
    errors: list[str] = []
    notes: list[str] = []

    static_by_site = {
        (Path(lock["path"]).as_posix(), lock["line"]): lock["id"]
        for lock in graph["locks"]
    }
    runtime_to_static: dict[object, str] = {}
    unmatched = []
    for lock in dump.get("locks", []):
        file_posix = Path(lock["file"]).as_posix()
        match = next(
            (
                static_id
                for (path, line), static_id in static_by_site.items()
                if line == lock["line"] and file_posix.endswith(path)
            ),
            None,
        )
        if match is None:
            unmatched.append(f"{lock['file']}:{lock['line']} ({lock['kind']})")
        else:
            runtime_to_static[lock["id"]] = match
    if unmatched:
        notes.append(
            "runtime locks with no static node (constructed outside a "
            f"class attribute): {', '.join(sorted(unmatched))}"
        )

    observed_ids = set(runtime_to_static.values())
    notes.append(
        f"{len(runtime_to_static)}/{len(dump.get('locks', []))} runtime "
        f"locks matched to {len(observed_ids)} static node(s); "
        f"{len(graph['locks']) - len(observed_ids)} static lock(s) unobserved"
    )
    unobserved = sorted(
        lock["id"] for lock in graph["locks"] if lock["id"] not in observed_ids
    )
    if unobserved:
        notes.append("unobserved static locks: " + ", ".join(unobserved))

    for cycle in dump.get("cycles", []):
        named = [runtime_to_static.get(node, str(node)) for node in cycle]
        errors.append(
            "runtime lock-order cycle: " + " -> ".join(named + [named[0]])
        )

    allowed = {(edge["from"], edge["to"]) for edge in graph["edges"]}
    allowed |= {tuple(edge) for edge in graph.get("contract", [])}
    allowed |= {tuple(edge) for edge in contract.get("runtime_only", [])}
    leaf = set(contract.get("leaf_locks", []))
    for edge in dump.get("edges", []):
        a = runtime_to_static.get(edge["from"])
        b = runtime_to_static.get(edge["to"])
        if a is None or b is None or a == b:
            continue  # unmatched endpoints were already noted; RLock reentry
        if a in leaf:
            errors.append(
                f"observed lock edge {a} -> {b} "
                f"(count {edge.get('count', 1)}) leaves a declared leaf "
                "lock — the leaf_locks contract in "
                "tools/analyze/lock_order.json forbids nesting under it"
            )
            continue
        if (a, b) not in allowed:
            errors.append(
                f"observed lock edge {a} -> {b} "
                f"(count {edge.get('count', 1)}) is absent from the static "
                "graph, the declared contract, and runtime_only — either a "
                "static-model gap or a new nesting; declare it in "
                "tools/analyze/lock_order.json after review"
            )
    return errors, notes


class LockOrderPass(ProjectPass):
    name = "lock-order"
    codes = ("lock-cycle", "undeclared-order", "leaf-violation")
    description = (
        "Cross-module lock-acquisition-order graph: cycles are potential "
        "deadlocks; nested acquires must have a declared order, and locks "
        "declared leaf in the contract may never nest at all."
    )

    def run(self, model: ProjectModel) -> tuple[list[Finding], dict]:
        graph = build_lock_graph(model)
        findings: list[Finding] = []

        edge_sites = {
            (edge["from"], edge["to"]): edge["sites"] for edge in graph["edges"]
        }
        for cycle in graph["cycles"]:
            member = set(cycle)
            witness = min(
                (
                    (site, (a, b))
                    for (a, b), sites in edge_sites.items()
                    if a in member and b in member
                    for site in sites
                ),
                key=lambda pair: (pair[0]["path"], pair[0]["line"]),
            )
            site, _edge = witness
            findings.append(
                Finding(
                    path=site["path"],
                    line=site["line"],
                    col=1,
                    rule=self.name,
                    code="lock-cycle",
                    message=(
                        "lock-order cycle (potential deadlock): "
                        + " -> ".join(cycle + [cycle[0]])
                    ),
                    symbol=site["via"],
                )
            )
        for edge in graph["edges"]:
            if edge["declared"]:
                continue
            site = edge["sites"][0]
            findings.append(
                Finding(
                    path=site["path"],
                    line=site["line"],
                    col=1,
                    rule=self.name,
                    code="undeclared-order",
                    message=(
                        f"nested lock acquisition {edge['from']} -> {edge['to']} "
                        "has no declared order in tools/analyze/lock_order.json"
                    ),
                    symbol=site["via"],
                )
            )
        leaf = set(graph.get("leaf_contract", []))
        for edge in graph["edges"]:
            if edge["from"] not in leaf:
                continue
            site = edge["sites"][0]
            findings.append(
                Finding(
                    path=site["path"],
                    line=site["line"],
                    col=1,
                    rule=self.name,
                    code="leaf-violation",
                    message=(
                        f"{edge['from']} is declared a leaf lock in "
                        "tools/analyze/lock_order.json but acquires "
                        f"{edge['to']} while held — hot-path leaf locks "
                        "(event-loop completion queue, shm ring slot scan) "
                        "must never nest"
                    ),
                    symbol=site["via"],
                )
            )
        return findings, {"lock_order": graph}
