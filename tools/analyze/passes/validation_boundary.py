"""Validation-boundary pass: image arrays are validated before use.

The repo's dtype policy (``docs/api.md``, ``repro.imaging.image``) is that
every public entry point taking an image array routes it through
:func:`repro.imaging.image.ensure_image` (directly, via ``as_float`` /
``as_uint8``, or by wrapping it in a
:class:`repro.core.analysis.ImageAnalysis`) before indexing or arithmetic.
That is what turns a malformed input into a clean :class:`ImageError`
instead of an arbitrary numpy broadcast surprise — and what keeps the
uint8-storage / float64-working-form contract (0–255 scale, the scale the
paper's MSE threshold 1714.96 assumes) true everywhere.

The pass applies to public module-level functions and public methods in
``repro.imaging.*`` and ``repro.core.*``. A parameter is treated as an
image when its name is image-like (``image``, ``img``, ``a``/``b`` metric
pairs, ...) **and** its annotation mentions ``ndarray``. The check is
order-aware: the first *raw use* (subscript, arithmetic, comparison) must
come after the parameter was passed to a validator. Validation is
transitive through same-module helpers — ``mse(a, b)`` is clean because
``_check_pair(a, b)`` calls ``ensure_image`` on both positions.
"""

from __future__ import annotations

import ast

from analyze.findings import Finding
from analyze.passes.base import AnalysisPass, PassContext

__all__ = ["ValidationBoundaryPass"]

#: Module prefixes whose public surface must validate.
_TARGET_PREFIXES = ("repro.imaging", "repro.core")

#: Parameter names that denote an image array.
_IMAGE_PARAM_NAMES = {
    "image",
    "img",
    "a",
    "b",
    "original",
    "reference",
    "first",
    "second",
    "attack_image",
    "benign_image",
}

#: Calls that perform (or imply) ensure_image validation of a bare argument.
_VALIDATORS = {
    "ensure_image",
    "as_float",
    "as_uint8",
    "channel_count",
    "is_grayscale",
    "split_channels",
    "pad_reflect",
    "image_summary",
    "ImageAnalysis",
}


def _annotation_is_ndarray(arg: ast.arg) -> bool:
    if arg.annotation is None:
        return False
    return "ndarray" in ast.unparse(arg.annotation)


def _image_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
    return [
        arg.arg
        for arg in args
        if arg.arg in _IMAGE_PARAM_NAMES and _annotation_is_ndarray(arg)
    ]


def _bare_name_args(call: ast.Call) -> list[str]:
    names = [arg.id for arg in call.args if isinstance(arg, ast.Name)]
    names.extend(
        kw.value.id for kw in call.keywords if isinstance(kw.value, ast.Name)
    )
    return names


def _positional_name_args(call: ast.Call) -> list[str | None]:
    return [arg.id if isinstance(arg, ast.Name) else None for arg in call.args]


def _callee_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return ""


def _validating_positions(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    local_validators: dict[str, set[int]],
) -> set[int]:
    """Parameter positions *fn* validates (directly or via local helpers)."""
    params = [a.arg for a in (list(fn.args.posonlyargs) + list(fn.args.args))]
    positions: set[int] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        callee = _callee_name(node)
        if callee in _VALIDATORS:
            for name in _bare_name_args(node):
                if name in params:
                    positions.add(params.index(name))
        elif callee in local_validators:
            for slot, name in enumerate(_positional_name_args(node)):
                if name in params and slot in local_validators[callee]:
                    positions.add(params.index(name))
    return positions


def _first_raw_use(fn: ast.AST, param: str) -> ast.AST | None:
    """Earliest subscript/arithmetic/comparison applied directly to *param*."""
    uses: list[ast.AST] = []

    def is_param(node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id == param

    for node in ast.walk(fn):
        if isinstance(node, ast.Subscript) and is_param(node.value):
            uses.append(node)
        elif isinstance(node, ast.BinOp) and (is_param(node.left) or is_param(node.right)):
            uses.append(node)
        elif isinstance(node, ast.UnaryOp) and is_param(node.operand):
            uses.append(node)
        elif isinstance(node, ast.Compare) and (
            is_param(node.left) or any(is_param(c) for c in node.comparators)
        ):
            uses.append(node)
        elif isinstance(node, ast.AugAssign) and is_param(node.target):
            uses.append(node)
    if not uses:
        return None
    return min(uses, key=lambda n: (n.lineno, n.col_offset))


def _first_validation_line(
    fn: ast.AST, param: str, local_validators: dict[str, set[int]]
) -> int | None:
    lines: list[int] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        callee = _callee_name(node)
        if callee in _VALIDATORS and param in _bare_name_args(node):
            lines.append(node.lineno)
        elif callee in local_validators:
            for slot, name in enumerate(_positional_name_args(node)):
                if name == param and slot in local_validators[callee]:
                    lines.append(node.lineno)
    return min(lines) if lines else None


class ValidationBoundaryPass(AnalysisPass):
    name = "validation-boundary"
    codes = ("unvalidated-image",)
    description = "public imaging/core functions validate image params before use"

    def run(self, context: PassContext) -> list[Finding]:
        if not context.module.startswith(_TARGET_PREFIXES):
            return []
        # Fixpoint over same-module helpers: which positions does each
        # function validate? Two rounds cover helper-of-helper chains.
        functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, node)
        local: dict[str, set[int]] = {name: set() for name in functions}
        for _ in range(3):
            changed = False
            for name, fn in functions.items():
                positions = _validating_positions(fn, local)
                if positions - local[name]:
                    local[name] |= positions
                    changed = True
            if not changed:
                break

        findings: list[Finding] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            enclosing = context.symbol_at(node.lineno)
            if enclosing.rpartition(".")[0].startswith("_"):
                continue
            for param in _image_params(node):
                use = _first_raw_use(node, param)
                if use is None:
                    continue
                validated_at = _first_validation_line(node, param, local)
                if validated_at is not None and validated_at <= use.lineno:
                    continue
                where = (
                    "before it is validated"
                    if validated_at is not None
                    else "without ever validating it"
                )
                findings.append(
                    context.finding(
                        use,
                        self.name,
                        "unvalidated-image",
                        f"public function '{node.name}' indexes or does "
                        f"arithmetic on image parameter '{param}' {where}; "
                        f"route it through ensure_image/as_float/"
                        f"ImageAnalysis first (uint8/float64 policy)",
                    )
                )
        return findings
