"""Shared infrastructure for analysis passes.

A pass is a class with a ``name``, a set of ``codes`` it can emit, and a
``run(context)`` method returning findings. The :class:`PassContext`
carries everything a pass may need about one file — parsed tree, source
lines, the dotted module name (``repro.serving.server``), and a scope
index mapping lines to enclosing ``def``/``class`` headers — so passes
stay pure functions of their input and the engine can fan files out to
worker processes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from analyze.findings import Finding

__all__ = ["PassContext", "AnalysisPass", "Scope", "build_scope_index", "call_name"]


@dataclass(frozen=True)
class Scope:
    """One function/class body span: header line plus the body interval."""

    qualname: str
    header_line: int
    start: int
    end: int


def build_scope_index(tree: ast.Module) -> list[Scope]:
    """Every function/class scope with its qualname, outermost first."""
    scopes: list[Scope] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                scopes.append(
                    Scope(
                        qualname=qualname,
                        header_line=child.lineno,
                        start=child.lineno,
                        end=child.end_lineno or child.lineno,
                    )
                )
                visit(child, qualname)
            else:
                visit(child, prefix)

    visit(tree, "")
    return scopes


@dataclass
class PassContext:
    """Everything a pass may inspect about one file."""

    path: str  #: repo-relative POSIX path
    module: str  #: dotted module name, or "" when not importable (scripts)
    tree: ast.Module
    lines: list[str]
    scopes: list[Scope] = field(default_factory=list)

    def symbol_at(self, line: int) -> str:
        """Innermost enclosing qualname for a 1-based line (or "")."""
        best = ""
        best_span = None
        for scope in self.scopes:
            if scope.start <= line <= scope.end:
                span = scope.end - scope.start
                if best_span is None or span <= best_span:
                    best, best_span = scope.qualname, span
        return best

    def scope_header_lines(self, line: int) -> list[int]:
        """Header lines of every scope enclosing *line*, for suppressions."""
        return [s.header_line for s in self.scopes if s.start <= line <= s.end]

    def finding(self, node: ast.AST, rule: str, code: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.path,
            line=line,
            col=col + 1,
            rule=rule,
            code=code,
            message=message,
            symbol=self.symbol_at(line),
        )


class AnalysisPass:
    """Base class: subclasses set ``name``/``codes`` and implement ``run``."""

    name: str = ""
    codes: tuple[str, ...] = ()
    description: str = ""

    def run(self, context: PassContext) -> list[Finding]:
        raise NotImplementedError


def call_name(node: ast.Call) -> str:
    """The called name: ``open`` for ``open(...)``, ``write`` for ``x.write(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""
