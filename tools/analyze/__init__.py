"""``tools/analyze`` — stdlib-only multi-pass AST static analysis.

The framework machine-checks the contracts this repo's concurrency,
validation, and API layers rely on (see ``docs/static-analysis.md``):

* :mod:`analyze.engine` — discovery, mtime-keyed cache, process fan-out;
* :mod:`analyze.passes` — the rule implementations;
* :mod:`analyze.findings` — findings, suppressions, and the baseline;
* :mod:`analyze.reporters` — human and JSON output;
* :mod:`analyze.cli` — the ``python tools/analyze.py`` entry point.
"""

from __future__ import annotations

__all__ = ["__version__"]

__version__ = "1.0"
