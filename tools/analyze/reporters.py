"""Reporters: human-readable text and machine-readable JSON.

The JSON schema is stable and versioned — CI annotations and dashboards
may rely on it::

    {
      "version": 1,
      "files_analyzed": 123,
      "elapsed_s": 0.42,
      "counts": {"findings": 2, "suppressed": 3, "baselined": 1},
      "stale_baseline": ["..."],
      "findings": [
        {"path": ..., "line": ..., "col": ..., "rule": ..., "code": ...,
         "message": ..., "symbol": ..., "fingerprint": ...},
        ...
      ]
    }
"""

from __future__ import annotations

import json

from analyze.findings import Finding

__all__ = ["JSON_SCHEMA_VERSION", "render_human", "render_json", "render_sarif"]

JSON_SCHEMA_VERSION = 1

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_human(
    findings: list[Finding],
    *,
    files_analyzed: int,
    suppressed: int,
    baselined: int,
    cache_hits: int,
    elapsed_s: float,
    stale_baseline: list[str],
) -> str:
    lines = [finding.render() for finding in findings]
    for fingerprint in stale_baseline:
        lines.append(f"stale baseline entry (no longer matches): {fingerprint}")
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"{len(findings)} {noun} in {files_analyzed} files "
        f"({suppressed} suppressed, {baselined} baselined, "
        f"{cache_hits} cached) in {elapsed_s:.2f}s"
    )
    return "\n".join(lines)


def render_json(
    findings: list[Finding],
    *,
    files_analyzed: int,
    suppressed: int,
    baselined: int,
    cache_hits: int,
    elapsed_s: float,
    stale_baseline: list[str],
) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_analyzed": files_analyzed,
        "elapsed_s": round(elapsed_s, 6),
        "counts": {
            "findings": len(findings),
            "suppressed": suppressed,
            "baselined": baselined,
            "cache_hits": cache_hits,
        },
        "stale_baseline": stale_baseline,
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2)


def render_sarif(
    findings: list[Finding],
    *,
    files_analyzed: int,
    suppressed: int,
    baselined: int,
    cache_hits: int,
    elapsed_s: float,
    stale_baseline: list[str],
) -> str:
    """SARIF 2.1.0 for code-scanning upload.

    ``ruleId`` is ``<rule>/<code>`` and the line-independent fingerprint
    rides along in ``partialFingerprints`` so code-scanning can track a
    finding across edits exactly like the baseline does.
    """
    rule_ids = sorted({f"{f.rule}/{f.code}" for f in findings})
    results = [
        {
            "ruleId": f"{finding.rule}/{finding.code}",
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    },
                    "logicalLocations": (
                        [{"fullyQualifiedName": finding.symbol}]
                        if finding.symbol
                        else []
                    ),
                }
            ],
            "partialFingerprints": {"analyzeFingerprint/v1": finding.fingerprint},
        }
        for finding in findings
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "tools/analyze",
                        "informationUri": "docs/static-analysis.md",
                        "rules": [{"id": rule_id} for rule_id in rule_ids],
                    }
                },
                "results": results,
                "properties": {
                    "filesAnalyzed": files_analyzed,
                    "suppressed": suppressed,
                    "baselined": baselined,
                    "cacheHits": cache_hits,
                    "elapsedSeconds": round(elapsed_s, 6),
                    "staleBaseline": stale_baseline,
                },
            }
        ],
    }
    return json.dumps(payload, indent=2)
