"""Phase-1 per-file summaries for the whole-program (project) passes.

The per-file engine parses each file exactly once; while it has the tree
in hand it also extracts a JSON-serializable *summary* — the facts the
phase-2 project passes need without re-reading any source:

* **classes** — methods, base names, lock attributes
  (``self._lock = threading.Lock()`` with construction line), attribute
  *type terms* (from ``self.x = Ctor(...)`` assignments and from
  annotations like ``_pool: WorkerPool | None``), and which attributes
  each method releases (``self._thread.join()``);
* **functions** — parameter/return type terms, every call site with a
  locally-inferred receiver term, ``with self.<lock>:`` held spans, a
  small taint IR (sources, flows, sinks, returns), and resource
  acquire/release/escape events;
* **imports, scopes, suppressions** — so project findings resolve names
  across modules and still honor inline ``# analyze: ignore[...]``.

Type *terms* are the little language the project model resolves lazily:

* ``{"t": "self"}`` — the enclosing instance;
* ``{"t": "attr", "of": T, "name": "pool"}`` — attribute of a term;
* ``{"t": "cls", "name": "WorkerPool", "elem": T|None}`` — a named class
  (possibly a container with a payload type, ``dict[str, _WorkerHandle]``);
* ``{"t": "ret", "name": "gauge", "recv": T}`` — a method call's return;
* ``{"t": "retf", "name": "threading.Thread"}`` — a bare/dotted call's
  return (constructor or function — phase 2 decides);
* ``{"t": "elem", "of": T}`` — iterating a container term.

Everything here is *local*: no imports are resolved and no other file is
consulted, so summaries cache and pickle exactly like findings do.
"""

from __future__ import annotations

import ast

from analyze.findings import parse_suppressions
from analyze.passes.base import build_scope_index

__all__ = [
    "SUMMARY_VERSION",
    "LOCK_FACTORIES",
    "RELEASE_METHODS",
    "extract_summary",
]

#: Bump when the summary shape changes (folded into the engine's cache key
#: via the analyzer-code digest, but explicit versioning keeps mixed
#: caches detectable).
SUMMARY_VERSION = 1

LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: Method names that release/terminate a held resource.
RELEASE_METHODS = {
    "close",
    "terminate",
    "kill",
    "wait",
    "join",
    "shutdown",
    "stop",
    "cleanup",
}

#: Taint sources: reads off a connection/pipe, or ``.read()`` on an
#: ``rfile``-ish receiver (the HTTP request body stream).
_TAINT_RECV_CALLS = {"recv", "recv_bytes", "recv_into"}
_TAINT_READ_CALLS = {"read", "readline"}

_HOLDS_LOCK_MARKERS = (
    "caller holds the lock",
    "holds the lock",
    "callers hold the lock",
)


def _dotted_chain(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure-Name attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_term(node: ast.AST | None) -> dict | None:
    """Type term for an annotation expression (best effort, None = unknown)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant):
        if not isinstance(node.value, str):
            return None
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return None if node.id == "None" else {"t": "cls", "name": node.id}
    if isinstance(node, ast.Attribute):
        chain = _dotted_chain(node)
        return {"t": "cls", "name": chain} if chain else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_term(node.left) or _annotation_term(node.right)
    if isinstance(node, ast.Subscript):
        base = _annotation_term(node.value)
        if base is None:
            return None
        elems = (
            list(node.slice.elts)
            if isinstance(node.slice, ast.Tuple)
            else [node.slice]
        )
        elem = None
        for candidate in reversed(elems):
            elem = _annotation_term(candidate)
            if elem is not None:
                break
        if base["name"].rpartition(".")[2] == "Optional":
            return elem
        base = dict(base)
        base["elem"] = elem
        return base
    return None


class _Env:
    """Per-function local type environment, updated in statement order."""

    def __init__(self) -> None:
        self.terms: dict[str, dict | None] = {}

    def __contains__(self, name: str) -> bool:
        return name in self.terms

    def get(self, name: str) -> dict | None:
        return self.terms.get(name)

    def set(self, name: str, term: dict | None) -> None:
        self.terms[name] = term


def _expr_term(node: ast.AST, env: _Env) -> dict | None:
    if isinstance(node, ast.Name):
        if node.id == "self":
            return {"t": "self"}
        return env.get(node.id)
    if isinstance(node, ast.Attribute):
        base = _expr_term(node.value, env)
        if base is None:
            return None
        return {"t": "attr", "of": base, "name": node.attr}
    if isinstance(node, ast.Call):
        return _call_term(node, env)
    if isinstance(node, ast.Await):
        return _expr_term(node.value, env)
    return None


def _call_term(node: ast.Call, env: _Env) -> dict | None:
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in ("list", "sorted", "tuple", "set", "frozenset", "reversed"):
            # Element-preserving container conversions: the payload type of
            # ``list(self._workers.values())`` is the argument's payload.
            return _expr_term(node.args[0], env) if node.args else None
        return {"t": "retf", "name": func.id}
    if isinstance(func, ast.Attribute):
        chain = _dotted_chain(func)
        root = chain.split(".", 1)[0] if chain else None
        if chain and root != "self" and root not in env:
            # a.b.c(...) where ``a`` is not a local: a module-dotted call.
            return {"t": "retf", "name": chain}
        recv = _expr_term(func.value, env)
        if recv is None:
            return None
        return {"t": "ret", "name": func.attr, "recv": recv}
    return None


def _call_record(node: ast.Call, env: _Env) -> dict | None:
    """One call-site record: leaf name, dotted chain (when root-importable),
    and the receiver's type term (for method calls)."""
    func = node.func
    if isinstance(func, ast.Name):
        return {"line": node.lineno, "name": func.id, "chain": func.id, "recv": None}
    if isinstance(func, ast.Attribute):
        chain = _dotted_chain(func)
        root = chain.split(".", 1)[0] if chain else None
        if chain and root != "self" and root not in env:
            return {
                "line": node.lineno,
                "name": func.attr,
                "chain": chain,
                "recv": None,
            }
        return {
            "line": node.lineno,
            "name": func.attr,
            "chain": None,
            "recv": _expr_term(func.value, env),
        }
    return None


def _taint_flow_vars(node: ast.AST) -> list[str]:
    """Names whose taint flows through *node* transparently (slices,
    concatenation, tuples — not calls)."""
    names: list[str] = []

    def walk(n: ast.AST) -> None:
        if isinstance(n, ast.Name):
            names.append(n.id)
        elif isinstance(n, ast.Subscript):
            walk(n.value)
        elif isinstance(n, ast.BinOp):
            walk(n.left)
            walk(n.right)
        elif isinstance(n, (ast.Tuple, ast.List, ast.Set)):
            for element in n.elts:
                walk(element)
        elif isinstance(n, ast.IfExp):
            walk(n.body)
            walk(n.orelse)
        elif isinstance(n, ast.Starred):
            walk(n.value)

    walk(node)
    return names


def _arg_vars(node: ast.Call) -> list[str | None]:
    """Positional-then-keyword argument vars (None for non-Name args)."""
    out: list[str | None] = []
    for arg in node.args:
        out.append(arg.id if isinstance(arg, ast.Name) else None)
    for keyword in node.keywords:
        value = keyword.value
        out.append(value.id if isinstance(value, ast.Name) else None)
    return out


def _term_mentions(term: dict | None, name: str) -> bool:
    if not term:
        return False
    if term.get("name") == name:
        return True
    for key in ("of", "recv", "elem"):
        if _term_mentions(term.get(key), name):
            return True
    return False


def _pipe_kwargs(node: ast.Call) -> list[str]:
    """Popen kwargs routed to PIPE (``stdout=subprocess.PIPE`` etc.)."""
    piped = []
    for keyword in node.keywords:
        if keyword.arg in ("stdout", "stderr", "stdin"):
            value = keyword.value
            leaf = value.attr if isinstance(value, ast.Attribute) else (
                value.id if isinstance(value, ast.Name) else ""
            )
            if leaf == "PIPE":
                piped.append(keyword.arg)
    return piped


def _daemon_kwarg(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "daemon" and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return False


def _caller_locked(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    if fn.name.endswith("_locked"):
        return True
    doc = ast.get_docstring(fn) or ""
    return any(marker in doc.lower() for marker in _HOLDS_LOCK_MARKERS)


class _FunctionScanner:
    """In-order scan of one function body (nested defs get their own
    scanner for calls/locks/taint, but *resource* events are inlined into
    the outermost function — a closure that opens a client still leaks it
    from its owner's frame)."""

    def __init__(self, fn, qual: str, cls_name: str | None) -> None:
        self.fn = fn
        self.qual = qual
        self.cls = cls_name
        self.env = _Env()
        self.calls: list[dict] = []
        self.lock_spans: list[dict] = []
        self.taint_ops: list[dict] = []
        self.resources: list[dict] = []
        self.attr_sets: list[dict] = []  # self.X = <term> assignments
        self.returns_self_attr = False

    # -- entry ---------------------------------------------------------------

    def scan(self) -> dict:
        for arg in (
            list(self.fn.args.posonlyargs)
            + list(self.fn.args.args)
            + list(self.fn.args.kwonlyargs)
        ):
            self.env.set(arg.arg, _annotation_term(arg.annotation))
        self._scan_body(self.fn.body, inline_resources=True)
        return {
            "qual": self.qual,
            "cls": self.cls,
            "line": self.fn.lineno,
            "end": self.fn.end_lineno or self.fn.lineno,
            "params": [
                arg.arg
                for arg in (
                    list(self.fn.args.posonlyargs) + list(self.fn.args.args)
                )
            ],
            "param_terms": {
                arg.arg: _annotation_term(arg.annotation)
                for arg in (
                    list(self.fn.args.posonlyargs)
                    + list(self.fn.args.args)
                    + list(self.fn.args.kwonlyargs)
                )
            },
            "returns": _annotation_term(self.fn.returns),
            "returns_self_attr": self.returns_self_attr,
            "caller_locked": _caller_locked(self.fn),
            "calls": self.calls,
            "lock_spans": self.lock_spans,
            "taint": self.taint_ops,
            "resources": self.resources,
        }

    # -- statement walk ------------------------------------------------------

    def _scan_body(
        self, body: list[ast.stmt], *, inline_resources: bool, protected: bool = False
    ) -> None:
        for stmt in body:
            self._scan_stmt(stmt, inline_resources=inline_resources, protected=protected)

    def _scan_stmt(
        self, stmt: ast.stmt, *, inline_resources: bool, protected: bool
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: resource events inline (closures share the owner's
            # lifetime); calls/locks/taint belong to the nested summary.
            if inline_resources:
                nested = _FunctionScanner(stmt, f"{self.qual}.{stmt.name}", self.cls)
                nested.env.terms.update(self.env.terms)
                nested.scan()
                self.resources.extend(nested.resources)
            return
        if isinstance(stmt, ast.ClassDef):
            return

        self._scan_expressions(stmt, protected=protected)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                expr = item.context_expr
                if isinstance(expr, ast.Attribute):
                    recv = _expr_term(expr.value, self.env)
                    if recv is not None:
                        # Candidate lock span: ``with self._lock:`` or
                        # ``with handle.send_lock:`` — phase 2 keeps it
                        # only if the receiver's class declares the attr
                        # as a lock.
                        self.lock_spans.append(
                            {
                                "attr": expr.attr,
                                "recv": recv,
                                "start": stmt.lineno,
                                "end": stmt.end_lineno or stmt.lineno,
                            }
                        )
                if isinstance(expr, ast.Call):
                    self._note_acquisition(
                        item.optional_vars.id
                        if isinstance(item.optional_vars, ast.Name)
                        else None,
                        expr,
                        managed=True,
                    )
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    self.env.set(item.optional_vars.id, _expr_term(expr, self.env))
            self._scan_body(stmt.body, inline_resources=inline_resources, protected=protected)
            return
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            self._scan_body(stmt.body, inline_resources=inline_resources, protected=protected)
            for handler in stmt.handlers:
                self._scan_body(handler.body, inline_resources=inline_resources, protected=True)
            self._scan_body(stmt.orelse, inline_resources=inline_resources, protected=protected)
            self._scan_body(stmt.finalbody, inline_resources=inline_resources, protected=True)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            if isinstance(stmt.target, ast.Name):
                iter_term = _expr_term(stmt.iter, self.env)
                self.env.set(
                    stmt.target.id,
                    {"t": "elem", "of": iter_term} if iter_term else None,
                )
                if isinstance(stmt.iter, ast.Name):
                    self._note_container_release(stmt, protected=protected)
            self._scan_body(stmt.body, inline_resources=inline_resources, protected=protected)
            self._scan_body(stmt.orelse, inline_resources=inline_resources, protected=protected)
            return
        for field in ("body", "orelse"):
            sub = getattr(stmt, field, None)
            if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                self._scan_body(sub, inline_resources=inline_resources, protected=protected)

        if isinstance(stmt, ast.Assign):
            self._apply_assign(stmt.targets, stmt.value, protected=protected)
        elif isinstance(stmt, ast.AnnAssign):
            term = _annotation_term(stmt.annotation)
            if isinstance(stmt.target, ast.Name):
                if term is None and stmt.value is not None:
                    term = _expr_term(stmt.value, self.env)
                self.env.set(stmt.target.id, term)
                if stmt.value is not None:
                    self._apply_assign([stmt.target], stmt.value, protected=protected)
            elif (
                isinstance(stmt.target, ast.Attribute)
                and isinstance(stmt.target.value, ast.Name)
                and stmt.target.value.id == "self"
            ):
                self.attr_sets.append(
                    {"attr": stmt.target.attr, "term": term, "line": stmt.lineno}
                )
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self.taint_ops.append(
                {
                    "op": "return",
                    "line": stmt.lineno,
                    "vars": _taint_flow_vars(stmt.value),
                }
            )
            for name in set(_taint_flow_vars(stmt.value)):
                self._note_escape(name, "return")
            term = _expr_term(stmt.value, self.env)
            inner = term
            while inner and inner.get("t") == "attr":
                if inner.get("of", {}).get("t") == "self":
                    # Accessor: returns a self-owned object — callers
                    # borrow it, they don't acquire it.
                    self.returns_self_attr = True
                    break
                inner = inner.get("of")

    # -- expression-level events --------------------------------------------

    def _scan_expressions(self, stmt: ast.stmt, *, protected: bool) -> None:
        """Record every call in *stmt* (excluding nested defs/lambdas),
        innermost-first so chained receivers are seen before wrappers."""
        calls: list[ast.Call] = []

        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
                ):
                    continue
                walk(child)
            if isinstance(node, ast.Call):
                calls.append(node)

        walk(stmt)
        for call in calls:
            record = _call_record(call, self.env)
            if record is not None:
                self.calls.append(record)
            self._note_taint_call(call, record)
            self._note_release(call, protected=protected)

    def _note_taint_call(self, call: ast.Call, record: dict | None) -> None:
        if record is None:
            return
        recv = record.get("recv")
        source = record["name"] in _TAINT_RECV_CALLS or (
            record["name"] in _TAINT_READ_CALLS
            and (
                _term_mentions(recv, "rfile")
                or (record.get("chain") or "").split(".")[0] == "rfile"
            )
        )
        self.taint_ops.append(
            {
                "op": "call",
                "line": call.lineno,
                "name": record["name"],
                "chain": record.get("chain"),
                "recv": recv,
                "recv_var": (
                    call.func.value.id
                    if isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                    else None
                ),
                "args": _arg_vars(call),
                "source": bool(source),
                "dst": None,  # patched by _apply_assign when bound
            }
        )

    # -- assignments ---------------------------------------------------------

    def _apply_assign(
        self, targets: list[ast.AST], value: ast.AST, *, protected: bool
    ) -> None:
        term = _expr_term(value, self.env)
        flow_vars = _taint_flow_vars(value)
        names: list[str] = []
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
                self.env.set(target.id, term)
            elif isinstance(target, (ast.Tuple, ast.List)) and isinstance(
                value, ast.Call
            ):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        names.append(element.id)
                        self.env.set(element.id, None)
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.attr_sets.append(
                    {"attr": target.attr, "term": term, "line": target.lineno}
                )
                if isinstance(value, ast.Name):
                    self.resources.append(
                        {
                            "event": "escape",
                            "var": value.id,
                            "kind": "self",
                            "attr": target.attr,
                        }
                    )
                if isinstance(value, ast.Call):
                    self._note_acquisition(
                        None, value, stored_attr=target.attr
                    )

        if isinstance(value, ast.Call):
            for op in reversed(self.taint_ops):
                if op["op"] == "call" and op["line"] == value.lineno:
                    op["dst"] = names[0] if names else None
                    break
            for name in names:
                self._note_acquisition(name, value)
        elif isinstance(value, (ast.ListComp, ast.SetComp)) and isinstance(
            value.elt, ast.Call
        ):
            for name in names:
                self._note_acquisition(name, value.elt, container_of=name)
        elif names and flow_vars:
            self.taint_ops.append(
                {
                    "op": "assign",
                    "line": getattr(value, "lineno", 0),
                    "dst": names[0],
                    "src": flow_vars,
                }
            )

    # -- resource events -----------------------------------------------------

    def _note_acquisition(
        self,
        var: str | None,
        call: ast.Call,
        *,
        managed: bool = False,
        stored_attr: str | None = None,
        container_of: str | None = None,
    ) -> None:
        term = _call_term(call, self.env)
        if term is None:
            return
        self.resources.append(
            {
                "event": "acquire",
                "var": var,
                "line": call.lineno,
                "term": term,
                "pipes": _pipe_kwargs(call),
                "daemon": _daemon_kwarg(call),
                "managed": managed,
                "stored_attr": stored_attr,
                "container": container_of,
            }
        )

    def _note_release(self, call: ast.Call, *, protected: bool) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in RELEASE_METHODS:
            return
        # x.close() / x.stdout.close() / alias-of-self-attr patterns.
        base = func.value
        sub_attr = None
        if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
            sub_attr = base.attr
            root = base.value.id
        elif isinstance(base, ast.Name):
            root = base.id
        else:
            return
        term = _expr_term(base, self.env)
        self.resources.append(
            {
                "event": "release",
                "var": root if root != "self" else None,
                "sub_attr": sub_attr if root != "self" else None,
                "self_attr": sub_attr if root == "self" else None,
                "term": term,
                "method": func.attr,
                "line": call.lineno,
                "protected": protected,
            }
        )
        # ``clients.append(client)`` — container membership, not a release.

    def _note_escape(self, var: str, kind: str) -> None:
        self.resources.append({"event": "escape", "var": var, "kind": kind})

    def _note_container_release(self, loop: ast.For, *, protected: bool) -> None:
        """``for x in container: x.close()`` marks *container* released."""
        assert isinstance(loop.target, ast.Name) and isinstance(loop.iter, ast.Name)
        var = loop.target.id
        for node in ast.walk(loop):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in RELEASE_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == var
            ):
                self.resources.append(
                    {
                        "event": "container-release",
                        "container": loop.iter.id,
                        "method": node.func.attr,
                        "line": node.lineno,
                        "protected": protected,
                    }
                )
                return


def _scan_container_links(fn: ast.AST, resources: list[dict]) -> None:
    """Link acquired vars to the list they are appended to (escape-to-
    container): ``clients.append(client)``."""
    acquired = {r["var"] for r in resources if r["event"] == "acquire" and r["var"]}
    if not acquired:
        return
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("append", "add")
            and isinstance(node.func.value, ast.Name)
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in acquired
        ):
            for record in resources:
                if record["event"] == "acquire" and record["var"] == node.args[0].id:
                    record["container"] = node.func.value.id


def _class_summary(cls: ast.ClassDef, functions: dict[str, dict]) -> dict:
    lock_attrs: dict[str, dict] = {}
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        leaf = (
            func.attr
            if isinstance(func, ast.Attribute)
            else (func.id if isinstance(func, ast.Name) else "")
        )
        if leaf not in LOCK_FACTORIES:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                lock_attrs[target.attr] = {"line": node.lineno, "kind": leaf}

    methods = [
        n.name
        for n in cls.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]

    # Class-level annotations (``x: WorkerPool | None``) type attributes too.
    attr_terms: dict[str, dict] = {}
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            term = _annotation_term(node.annotation)
            if term is not None:
                attr_terms[node.target.id] = term

    release_sites: dict[str, list[str]] = {}
    for method in methods:
        summary = functions.get(f"{cls.name}.{method}")
        if summary is None:
            continue
        for record in summary["resources"]:
            if record["event"] != "release":
                continue
            attr = record.get("self_attr")
            term = record.get("term")
            if attr is None and term and term.get("t") == "attr":
                inner = term
                # Resolve alias chains back to a self attribute root.
                while inner.get("of", {}).get("t") == "attr":
                    inner = inner["of"]
                if inner.get("of", {}).get("t") == "self":
                    attr = inner["name"]
            if attr:
                release_sites.setdefault(attr, [])
                if method not in release_sites[attr]:
                    release_sites[attr].append(method)
        for record in summary.get("attr_sets", []):
            if record["term"] is not None and record["attr"] not in attr_terms:
                attr_terms[record["attr"]] = record["term"]

    return {
        "name": cls.name,
        "line": cls.lineno,
        "bases": [b for b in (_dotted_chain(base) for base in cls.bases) if b],
        "methods": methods,
        "lock_attrs": lock_attrs,
        "attr_terms": attr_terms,
        "release_sites": release_sites,
    }


def _imports_of(tree: ast.Module) -> dict[str, str]:
    """Local bound name -> absolute dotted target (module or module.name)."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                imports[bound] = alias.name if alias.asname else alias.name.split(".")[0]
                if alias.asname is None:
                    imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
                else:
                    imports[bound] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def extract_summary(tree: ast.Module, *, module: str, path: str, lines: list[str]) -> dict:
    """The per-file summary consumed by the phase-2 project passes."""
    functions: dict[str, dict] = {}

    def visit_functions(
        node: ast.AST, prefix: str, cls_name: str | None, in_function: bool = False
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                scanner = _FunctionScanner(child, qual, cls_name)
                summary = scanner.scan()
                if in_function:
                    # Nested def: its resource events were already inlined
                    # into the owner's summary (closures share the owner's
                    # lifetime) — don't double-report them here.
                    summary["resources"] = []
                else:
                    _scan_container_links(child, summary["resources"])
                summary["attr_sets"] = scanner.attr_sets
                functions[qual] = summary
                visit_functions(child, qual, cls_name, True)
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                visit_functions(child, qual, child.name, in_function)
            else:
                visit_functions(child, prefix, cls_name, in_function)

    visit_functions(tree, "", None)

    classes = {
        node.name: _class_summary(node, functions)
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }

    scopes = [
        [s.qualname, s.header_line, s.start, s.end] for s in build_scope_index(tree)
    ]
    suppress = {
        str(line): sorted(tokens)
        for line, tokens in parse_suppressions(lines).items()
    }
    return {
        "version": SUMMARY_VERSION,
        "module": module,
        "path": path,
        "imports": _imports_of(tree),
        "classes": classes,
        "functions": functions,
        "scopes": scopes,
        "suppress": suppress,
    }
